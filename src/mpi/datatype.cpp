#include "mpi/datatype.hpp"

#include <algorithm>
#include <cstring>

namespace mpi {

TypeLayout::TypeLayout(std::vector<Block> blocks, std::size_t extent)
    : extent_(extent) {
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.offset < b.offset; });
  // Coalesce adjacent runs so pack/unpack do as few memcpys as possible.
  for (const Block& b : blocks) {
    if (b.length == 0) continue;
    if (!blocks_.empty() &&
        blocks_.back().offset + blocks_.back().length == b.offset) {
      blocks_.back().length += b.length;
    } else {
      blocks_.push_back(b);
    }
    size_ += b.length;
  }
  if (!blocks_.empty()) {
    extent_ = std::max(extent_,
                       blocks_.back().offset + blocks_.back().length);
  }
}

TypeLayout TypeLayout::contiguous(int count, Datatype base) {
  const std::size_t el = datatype_size(base);
  std::vector<Block> blocks{
      Block{0, static_cast<std::size_t>(count) * el}};
  return TypeLayout(std::move(blocks), static_cast<std::size_t>(count) * el);
}

TypeLayout TypeLayout::vector(int count, int blocklen, int stride,
                              Datatype base) {
  if (blocklen > stride && count > 1) {
    throw MpiError("Type_vector: overlapping blocks (blocklen > stride)");
  }
  const std::size_t el = datatype_size(base);
  std::vector<Block> blocks;
  blocks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    blocks.push_back(Block{static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(stride) * el,
                           static_cast<std::size_t>(blocklen) * el});
  }
  // MPI extent of a vector: from the first to one past the last block.
  const std::size_t extent =
      count > 0 ? (static_cast<std::size_t>(count - 1) *
                       static_cast<std::size_t>(stride) +
                   static_cast<std::size_t>(blocklen)) *
                      el
                : 0;
  return TypeLayout(std::move(blocks), extent);
}

TypeLayout TypeLayout::indexed(std::span<const int> blocklens,
                               std::span<const int> displs, Datatype base) {
  if (blocklens.size() != displs.size()) {
    throw MpiError("Type_indexed: mismatched block/displacement counts");
  }
  const std::size_t el = datatype_size(base);
  std::vector<Block> blocks;
  blocks.reserve(blocklens.size());
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    blocks.push_back(
        Block{static_cast<std::size_t>(displs[i]) * el,
              static_cast<std::size_t>(blocklens[i]) * el});
  }
  return TypeLayout(std::move(blocks), 0);
}

void TypeLayout::pack(const void* src, int count, void* dst) const {
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  for (int c = 0; c < count; ++c) {
    const std::byte* base = in + static_cast<std::size_t>(c) * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(out, base + b.offset, b.length);
      out += b.length;
    }
  }
}

void TypeLayout::unpack(const void* src, int count, void* dst) const {
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  for (int c = 0; c < count; ++c) {
    std::byte* base = out + static_cast<std::size_t>(c) * extent_;
    for (const Block& b : blocks_) {
      std::memcpy(base + b.offset, in, b.length);
      in += b.length;
    }
  }
}

}  // namespace mpi
