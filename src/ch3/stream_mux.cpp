#include "ch3/stream_mux.hpp"

#include <cstring>

namespace ch3 {

void StreamMux::enqueue(int dst, const PktHeader& hdr, const void* payload,
                        std::size_t len, std::function<void()> on_streamed) {
  OutMsg m;
  m.hdr = hdr;
  m.payload = static_cast<const std::byte*>(payload);
  m.len = len;
  m.on_streamed = std::move(on_streamed);
  vcs_[static_cast<std::size_t>(dst)].sendq.push_back(std::move(m));
}

bool StreamMux::idle() const {
  for (const auto& vc : vcs_) {
    if (!vc.sendq.empty() || vc.hdr_got != 0 || vc.in_payload) return false;
  }
  return true;
}

sim::Task<bool> StreamMux::progress_send(int peer, Vc& vc) {
  bool moved = false;
  while (!vc.sendq.empty()) {
    OutMsg& m = vc.sendq.front();
    const std::size_t hdr_size = sizeof(PktHeader);
    rdmach::ConstIov iovs[2];
    std::size_t n_iovs = 0;
    if (m.sent < hdr_size) {
      iovs[n_iovs++] = rdmach::ConstIov(
          reinterpret_cast<const std::byte*>(&m.hdr) + m.sent,
          hdr_size - m.sent);
      if (m.len > 0) iovs[n_iovs++] = rdmach::ConstIov(m.payload, m.len);
    } else {
      const std::size_t off = m.sent - hdr_size;
      iovs[n_iovs++] = rdmach::ConstIov(m.payload + off, m.len - off);
    }
    std::size_t k = 0;
    try {
      k = co_await ch_->put(ch_->connection(peer),
                            std::span<const rdmach::ConstIov>(iovs, n_iovs));
    } catch (const rdmach::ChannelError& e) {
      throw VcError(peer, "vc to rank " + std::to_string(peer) +
                              " failed: " + e.what());
    }
    m.sent += k;
    moved |= k > 0;
    if (m.sent < hdr_size + m.len) break;  // pipe full / rendezvous pending
    if (m.on_streamed) m.on_streamed();
    vc.sendq.pop_front();
  }
  co_return moved;
}

sim::Task<bool> StreamMux::progress_recv(int peer, Vc& vc) {
  bool moved = false;
  rdmach::Connection& conn = ch_->connection(peer);
  for (;;) {
    if (!vc.in_payload) {
      std::size_t k = 0;
      try {
        k = co_await ch_->get(conn, vc.hdr_buf + vc.hdr_got,
                              sizeof(PktHeader) - vc.hdr_got);
      } catch (const rdmach::ChannelError& e) {
        throw VcError(peer, "vc to rank " + std::to_string(peer) +
                                " failed: " + e.what());
      }
      vc.hdr_got += k;
      moved |= k > 0;
      if (vc.hdr_got < sizeof(PktHeader)) break;
      std::memcpy(&vc.rhdr, vc.hdr_buf, sizeof(PktHeader));
      vc.sink = handler_->on_packet(peer, vc.rhdr);
      vc.payload_got = 0;
      const std::size_t expect =
          vc.rhdr.type == PktType::kEager ? vc.rhdr.match.length : 0;
      if (expect == 0) {
        if (vc.rhdr.type == PktType::kEager) {
          handler_->on_payload_done(peer, vc.rhdr, vc.sink);
        }
        vc.hdr_got = 0;
        moved = true;
        continue;  // next frame may already be available
      }
      vc.in_payload = true;
    }
    const std::size_t want = vc.rhdr.match.length - vc.payload_got;
    std::size_t k = 0;
    try {
      k = co_await ch_->get(conn, vc.sink.dst + vc.payload_got, want);
    } catch (const rdmach::ChannelError& e) {
      throw VcError(peer, "vc to rank " + std::to_string(peer) +
                              " failed: " + e.what());
    }
    vc.payload_got += k;
    moved |= k > 0;
    if (vc.payload_got < vc.rhdr.match.length) break;
    handler_->on_payload_done(peer, vc.rhdr, vc.sink);
    vc.in_payload = false;
    vc.hdr_got = 0;
  }
  co_return moved;
}

sim::Task<bool> StreamMux::progress() {
  bool moved = false;
  for (int p = 0; p < ch_->size(); ++p) {
    if (p == ch_->rank()) continue;
    Vc& vc = vcs_[static_cast<std::size_t>(p)];
    moved |= co_await progress_send(p, vc);
    moved |= co_await progress_recv(p, vc);
  }
  co_return moved;
}

}  // namespace ch3
