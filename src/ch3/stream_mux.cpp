#include "ch3/stream_mux.hpp"

#include <cstring>

namespace ch3 {

void StreamMux::enqueue(int dst, const PktHeader& hdr, const void* payload,
                        std::size_t len, std::function<void()> on_streamed) {
  if (ch_->config().ft_detector && ch_->ctx().kvs->is_dead(dst)) {
    // Corpse: drop the frame (keeping no reference to the payload).  The
    // send request never completes; the MPI engine's fault sweep fails it.
    return;
  }
  OutMsg m;
  m.hdr = hdr;
  stamp_obit(m.hdr);
  m.payload = static_cast<const std::byte*>(payload);
  m.len = len;
  m.on_streamed = std::move(on_streamed);
  vcs_[static_cast<std::size_t>(dst)].sendq.push_back(std::move(m));
  const auto it = std::lower_bound(work_.begin(), work_.end(), dst);
  if (it == work_.end() || *it != dst) work_.insert(it, dst);
}

bool StreamMux::idle() const {
  for (const auto& vc : vcs_) {
    if (!vc.sendq.empty() || !vc.await_release.empty() || vc.hdr_got != 0 ||
        vc.in_payload || !vc.ahead.empty()) {
      return false;
    }
  }
  return true;
}

namespace {
std::size_t expect_len(const PktHeader& hdr) {
  return hdr.type == PktType::kEager ? hdr.match.length : 0;
}
}  // namespace

void StreamMux::stamp_obit(PktHeader& hdr) {
  if (!ch_->config().ft_detector) return;
  const std::vector<int>& obits = ch_->ctx().kvs->obits();
  if (obits.empty()) return;
  // Rotate through the board so several deaths all ride out on traffic.
  hdr.reserved =
      static_cast<std::uint64_t>(obits[obit_cursor_++ % obits.size()]) + 1;
}

bool StreamMux::fence_dead(int peer, Vc& vc) {
  if (!ch_->config().ft_detector || !ch_->ctx().kvs->is_dead(peer)) {
    return false;
  }
  // Obituaried peer: drop all framing state so no progress pass ever again
  // touches the VC (or dereferences payload pointers whose owners have
  // unwound).  Un-streamed sends stay incomplete on purpose -- the engine's
  // fault sweep converts them into process-failure errors.
  vc.sendq.clear();
  vc.await_release.clear();
  vc.ahead.clear();
  vc.hdr_got = 0;
  vc.in_payload = false;
  const auto it = std::lower_bound(work_.begin(), work_.end(), peer);
  if (it != work_.end() && *it == peer) work_.erase(it);
  return true;
}

void StreamMux::note_obit(const PktHeader& hdr) {
  if (hdr.reserved == 0 || !ch_->config().ft_detector) return;
  pmi::Context& ctx = ch_->ctx();
  if (!ctx.kvs->post_obit(static_cast<int>(hdr.reserved) - 1)) return;
  // First local sighting of this obituary: wake every rank's progress loop
  // so blocked operations against the corpse re-check the board now.
  pmi::wake_all_ranks(ctx);
}

sim::Task<bool> StreamMux::progress_send(int peer, Vc& vc) {
  bool moved = false;
  rdmach::Connection& conn = ch_->connection(peer);
  while (!vc.sendq.empty()) {
    OutMsg& m = vc.sendq.front();
    const std::size_t hdr_size = sizeof(PktHeader);
    rdmach::ConstIov iovs[2];
    std::size_t n_iovs = 0;
    if (m.sent < hdr_size) {
      iovs[n_iovs++] = rdmach::ConstIov(
          reinterpret_cast<const std::byte*>(&m.hdr) + m.sent,
          hdr_size - m.sent);
      if (m.len > 0) iovs[n_iovs++] = rdmach::ConstIov(m.payload, m.len);
    } else {
      const std::size_t off = m.sent - hdr_size;
      iovs[n_iovs++] = rdmach::ConstIov(m.payload + off, m.len - off);
    }
    std::size_t k = 0;
    try {
      k = co_await ch_->put_pinned(
          conn, std::span<const rdmach::ConstIov>(iovs, n_iovs));
    } catch (const rdmach::ChannelError& e) {
      throw VcError(peer, "vc to rank " + std::to_string(peer) +
                              " failed: " + e.to_string());
    }
    m.sent += k;
    moved |= k > 0;
    if (m.sent < hdr_size + m.len) break;  // pipe full / rendezvous pending
    // Fully accepted: the next frame may go out (rendezvous bytes of this
    // one stay on loan), but completion is only reported at release.
    if (m.on_streamed) {
      vc.await_release.push_back(
          PendingRelease{ch_->put_accepted(conn), std::move(m.on_streamed)});
    }
    vc.sendq.pop_front();
  }
  moved |= drain_releases(peer, vc);
  co_return moved;
}

bool StreamMux::drain_releases(int peer, Vc& vc) {
  const std::uint64_t released = ch_->put_released(ch_->connection(peer));
  bool fired = false;
  while (!vc.await_release.empty() &&
         vc.await_release.front().mark <= released) {
    if (vc.await_release.front().on_streamed) {
      vc.await_release.front().on_streamed();
    }
    vc.await_release.pop_front();
    fired = true;
  }
  return fired;
}

sim::Task<bool> StreamMux::progress_recv(int peer, Vc& vc) {
  bool moved = false;
  rdmach::Connection& conn = ch_->connection(peer);
  for (;;) {
    if (!vc.in_payload && !vc.ahead.empty()) {
      // The previous frame is done: promote the oldest ahead frame.  Its
      // payload may already be fully drained (eager), in flight
      // (attached rendezvous), or partial -- the regular paths below
      // resume it from `got`.
      AheadFrame f = std::move(vc.ahead.front());
      vc.ahead.pop_front();
      moved = true;
      if (f.have_hdr) {
        vc.rhdr = f.hdr;
        vc.sink = f.sink;
        vc.payload_got = f.got;
        if (vc.payload_got >= expect_len(vc.rhdr)) {
          if (vc.rhdr.type == PktType::kEager) {
            handler_->on_payload_done(peer, vc.rhdr, vc.sink);
          }
          vc.hdr_got = 0;
          continue;
        }
        vc.in_payload = true;
      } else {
        std::memcpy(vc.hdr_buf, f.hdr_buf, sizeof(PktHeader));
        vc.hdr_got = f.hdr_got;
      }
    }
    if (!vc.in_payload) {
      std::size_t k = 0;
      try {
        k = co_await ch_->get(conn, vc.hdr_buf + vc.hdr_got,
                              sizeof(PktHeader) - vc.hdr_got);
      } catch (const rdmach::ChannelError& e) {
        throw VcError(peer, "vc to rank " + std::to_string(peer) +
                                " failed: " + e.to_string());
      }
      vc.hdr_got += k;
      moved |= k > 0;
      if (vc.hdr_got < sizeof(PktHeader)) break;
      std::memcpy(&vc.rhdr, vc.hdr_buf, sizeof(PktHeader));
      note_obit(vc.rhdr);
      vc.sink = handler_->on_packet(peer, vc.rhdr);
      vc.payload_got = 0;
      if (expect_len(vc.rhdr) == 0) {
        if (vc.rhdr.type == PktType::kEager) {
          handler_->on_payload_done(peer, vc.rhdr, vc.sink);
        }
        vc.hdr_got = 0;
        moved = true;
        continue;  // next frame may already be available
      }
      vc.in_payload = true;
    }
    const std::size_t want = vc.rhdr.match.length - vc.payload_got;
    std::size_t k = 0;
    try {
      k = co_await ch_->get(conn, vc.sink.dst + vc.payload_got, want);
    } catch (const rdmach::ChannelError& e) {
      throw VcError(peer, "vc to rank " + std::to_string(peer) +
                              " failed: " + e.to_string());
    }
    vc.payload_got += k;
    moved |= k > 0;
    if (vc.payload_got < vc.rhdr.match.length) {
      const bool looked = co_await progress_lookahead(peer, vc);
      moved |= looked;
      break;
    }
    handler_->on_payload_done(peer, vc.rhdr, vc.sink);
    vc.in_payload = false;
    vc.hdr_got = 0;
  }
  moved |= drain_releases(peer, vc);
  co_return moved;
}

sim::Task<bool> StreamMux::progress_lookahead(int peer, Vc& vc) {
  const std::size_t cap = ch_->rndv_lookahead();
  if (cap == 0) co_return false;
  bool moved = false;
  rdmach::Connection& conn = ch_->connection(peer);
  for (;;) {
    // Invariant: every ahead frame but the last is complete (drained or
    // attached); only the back can make progress at the pipe's cursor.
    const bool back_done =
        vc.ahead.empty() ||
        (vc.ahead.back().have_hdr &&
         (vc.ahead.back().attached ||
          vc.ahead.back().got >= expect_len(vc.ahead.back().hdr)));
    if (back_done) {
      if (vc.ahead.size() >= cap) break;
      vc.ahead.emplace_back();
    }
    AheadFrame& f = vc.ahead.back();
    if (!f.have_hdr) {
      const rdmach::Iov hiov{f.hdr_buf + f.hdr_got,
                             sizeof(PktHeader) - f.hdr_got};
      std::size_t k = 0;
      try {
        k = co_await ch_->get_ahead(conn,
                                    std::span<const rdmach::Iov>(&hiov, 1));
      } catch (const rdmach::ChannelError& e) {
        throw VcError(peer, "vc to rank " + std::to_string(peer) +
                                " failed: " + e.to_string());
      }
      f.hdr_got += k;
      moved |= k > 0;
      if (f.hdr_got < sizeof(PktHeader)) break;
      std::memcpy(&f.hdr, f.hdr_buf, sizeof(PktHeader));
      note_obit(f.hdr);
      f.have_hdr = true;
      f.sink = handler_->on_packet(peer, f.hdr);
      moved = true;
    }
    const std::size_t expect = expect_len(f.hdr);
    if (f.attached || f.got >= expect) continue;  // frame complete
    if (f.got == 0) {
      const rdmach::Iov siov{f.sink.dst, expect};
      bool attached = false;
      try {
        attached = co_await ch_->attach_rndv(
            conn, std::span<const rdmach::Iov>(&siov, 1));
      } catch (const rdmach::ChannelError& e) {
        throw VcError(peer, "vc to rank " + std::to_string(peer) +
                                " failed: " + e.to_string());
      }
      if (attached) {
        f.attached = true;
        moved = true;
        continue;
      }
    }
    const rdmach::Iov piov{f.sink.dst + f.got, expect - f.got};
    std::size_t k = 0;
    try {
      k = co_await ch_->get_ahead(conn,
                                  std::span<const rdmach::Iov>(&piov, 1));
    } catch (const rdmach::ChannelError& e) {
      throw VcError(peer, "vc to rank " + std::to_string(peer) +
                              " failed: " + e.to_string());
    }
    f.got += k;
    moved |= k > 0;
    if (f.got < expect) break;  // still in flight behind the head
  }
  co_return moved;
}

sim::Task<bool> StreamMux::progress() {
  bool moved = false;
  const std::vector<int>* act = ch_->active_peers();
  if (act == nullptr) {
    // Eager channel: every VC may hold inbound data at any time, so the
    // pass stays the original dense scan.
    for (int p = 0; p < ch_->size(); ++p) {
      if (p == ch_->rank()) continue;
      Vc& vc = vcs_[static_cast<std::size_t>(p)];
      if (fence_dead(p, vc)) continue;
      moved |= co_await progress_send(p, vc);
      moved |= co_await progress_recv(p, vc);
    }
    co_return moved;
  }
  // Lazy-connect channel: drive its connection control plane first (it can
  // wire passive peers or tear down idle ones), then visit only the union
  // of wired peers and VCs with queued sends -- everything else is
  // provably idle, so a pass is O(active) instead of O(ranks).
  co_await ch_->pre_progress();
  act = ch_->active_peers();
  scratch_.clear();
  std::set_union(act->begin(), act->end(), work_.begin(), work_.end(),
                 std::back_inserter(scratch_));
  for (const int p : scratch_) {
    if (p == ch_->rank()) continue;
    Vc& vc = vcs_[static_cast<std::size_t>(p)];
    if (fence_dead(p, vc)) continue;
    moved |= co_await progress_send(p, vc);
    moved |= co_await progress_recv(p, vc);
    if (vc.sendq.empty() && vc.await_release.empty()) {
      const auto it = std::lower_bound(work_.begin(), work_.end(), p);
      if (it != work_.end() && *it == p) work_.erase(it);
    }
  }
  co_return moved;
}

}  // namespace ch3
