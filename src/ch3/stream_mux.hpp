// Packet framing over the RDMA Channel byte pipes.
//
// Both CH3 channel implementations move (at least their eager and control)
// traffic as a per-VC byte stream of [PktHeader | payload] frames through
// rdmach put/get.  StreamMux owns the per-VC framing state machines:
// send-side queueing and partial-put retry, receive-side header
// reassembly and payload delivery into handler-provided sinks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "ch3/ch3.hpp"
#include "ch3/packet.hpp"
#include "rdmach/channel.hpp"

namespace ch3 {

/// Packet-level callbacks (one level below EngineHooks).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  /// A full header arrived from `src`.  For payload-bearing packets return
  /// the destination; for pure control packets handle it and return a null
  /// sink.
  virtual Sink on_packet(int src, const PktHeader& hdr) = 0;
  /// The payload announced by `hdr` is fully placed in `sink`.
  virtual void on_payload_done(int src, const PktHeader& hdr,
                               const Sink& sink) = 0;
};

class StreamMux {
 public:
  StreamMux(rdmach::Channel& ch, PacketHandler& handler)
      : ch_(&ch), handler_(&handler), vcs_(static_cast<std::size_t>(ch.size())) {}

  /// Queues a frame; `on_streamed` (optional) fires when the last byte has
  /// been accepted by the channel.
  void enqueue(int dst, const PktHeader& hdr, const void* payload,
               std::size_t len, std::function<void()> on_streamed = {});

  /// Pushes queued sends and drains incoming frames on every VC.
  /// Returns true if any byte moved or any packet completed.
  sim::Task<bool> progress();

  bool idle() const;

 private:
  struct OutMsg {
    PktHeader hdr;
    const std::byte* payload = nullptr;
    std::size_t len = 0;
    std::size_t sent = 0;  // of sizeof(PktHeader) + len
    std::function<void()> on_streamed;
  };

  /// A fully accepted frame whose bytes the channel still holds on loan
  /// (put_pinned): `on_streamed` fires once the release watermark passes
  /// `mark`.  Channels without loaned rendezvous release on accept, so the
  /// callback fires in the same progress pass as before.
  struct PendingRelease {
    std::uint64_t mark = 0;
    std::function<void()> on_streamed;
  };

  /// A frame read *past* an in-flight rendezvous via the channel's
  /// lookahead interface (rndv_lookahead() > 0).  Its header and any eager
  /// payload bytes are drained out of the pipe behind the current frame;
  /// a rendezvous payload is handed to the channel with attach_rndv() so
  /// its data leg overlaps the current frame's.  When the current frame
  /// completes, the oldest ahead frame is promoted in its place --
  /// completion callbacks stay in stream order.
  struct AheadFrame {
    alignas(8) std::byte hdr_buf[sizeof(PktHeader)];
    std::size_t hdr_got = 0;
    bool have_hdr = false;
    PktHeader hdr;
    Sink sink;
    std::size_t got = 0;    // payload bytes drained ahead (eager frames)
    bool attached = false;  // rendezvous sink handed to the channel
  };

  struct Vc {
    std::deque<OutMsg> sendq;
    std::deque<PendingRelease> await_release;
    // receive framing
    alignas(8) std::byte hdr_buf[sizeof(PktHeader)];
    std::size_t hdr_got = 0;
    bool in_payload = false;
    PktHeader rhdr;
    Sink sink;
    std::size_t payload_got = 0;
    std::deque<AheadFrame> ahead;  // frames beyond the current payload
  };

  /// Failure-detector piggyback (channel config ft_detector): outgoing
  /// frames carry one obituaried rank (+1; 0 = none) in the header's
  /// reserved word, and every parsed header feeds the local board -- a
  /// death known anywhere spreads along all existing traffic without
  /// extra packets.  With the detector off both are no-ops and the wire
  /// bytes stay bit-identical (reserved stays 0).
  void stamp_obit(PktHeader& hdr);
  void note_obit(const PktHeader& hdr);
  /// True (and all VC state dropped) when `peer` has a published obituary:
  /// the VC is fenced off and progress passes skip it entirely.
  bool fence_dead(int peer, Vc& vc);

  sim::Task<bool> progress_send(int peer, Vc& vc);
  sim::Task<bool> progress_recv(int peer, Vc& vc);
  /// Reads frames behind an in-flight rendezvous payload (see AheadFrame).
  sim::Task<bool> progress_lookahead(int peer, Vc& vc);
  /// Fires on_streamed callbacks whose loaned bytes the channel released.
  /// Called from both progress directions: the release-advancing ack can
  /// be consumed by either, and the waiting sender must learn of it before
  /// the next inbound frame is parsed.
  bool drain_releases(int peer, Vc& vc);

  rdmach::Channel* ch_;
  PacketHandler* handler_;
  std::vector<Vc> vcs_;
  /// Sparse iteration (lazy-connect channels): peers with queued or loaned
  /// sends, sorted unique.  The union of this and the channel's active set
  /// is everything a progress pass can move; all other VCs are provably
  /// idle.  Unused (empty) when the channel reports no active set.
  std::vector<int> work_;
  std::vector<int> scratch_;  // per-pass snapshot of the union
  /// Round-robin index into the obituary board for stamp_obit.
  std::size_t obit_cursor_ = 0;
};

}  // namespace ch3
