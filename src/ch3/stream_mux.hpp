// Packet framing over the RDMA Channel byte pipes.
//
// Both CH3 channel implementations move (at least their eager and control)
// traffic as a per-VC byte stream of [PktHeader | payload] frames through
// rdmach put/get.  StreamMux owns the per-VC framing state machines:
// send-side queueing and partial-put retry, receive-side header
// reassembly and payload delivery into handler-provided sinks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "ch3/ch3.hpp"
#include "ch3/packet.hpp"
#include "rdmach/channel.hpp"

namespace ch3 {

/// Packet-level callbacks (one level below EngineHooks).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  /// A full header arrived from `src`.  For payload-bearing packets return
  /// the destination; for pure control packets handle it and return a null
  /// sink.
  virtual Sink on_packet(int src, const PktHeader& hdr) = 0;
  /// The payload announced by `hdr` is fully placed in `sink`.
  virtual void on_payload_done(int src, const PktHeader& hdr,
                               const Sink& sink) = 0;
};

class StreamMux {
 public:
  StreamMux(rdmach::Channel& ch, PacketHandler& handler)
      : ch_(&ch), handler_(&handler), vcs_(static_cast<std::size_t>(ch.size())) {}

  /// Queues a frame; `on_streamed` (optional) fires when the last byte has
  /// been accepted by the channel.
  void enqueue(int dst, const PktHeader& hdr, const void* payload,
               std::size_t len, std::function<void()> on_streamed = {});

  /// Pushes queued sends and drains incoming frames on every VC.
  /// Returns true if any byte moved or any packet completed.
  sim::Task<bool> progress();

  bool idle() const;

 private:
  struct OutMsg {
    PktHeader hdr;
    const std::byte* payload = nullptr;
    std::size_t len = 0;
    std::size_t sent = 0;  // of sizeof(PktHeader) + len
    std::function<void()> on_streamed;
  };

  struct Vc {
    std::deque<OutMsg> sendq;
    // receive framing
    alignas(8) std::byte hdr_buf[sizeof(PktHeader)];
    std::size_t hdr_got = 0;
    bool in_payload = false;
    PktHeader rhdr;
    Sink sink;
    std::size_t payload_got = 0;
  };

  sim::Task<bool> progress_send(int peer, Vc& vc);
  sim::Task<bool> progress_recv(int peer, Vc& vc);

  rdmach::Channel* ch_;
  PacketHandler* handler_;
  std::vector<Vc> vcs_;
};

}  // namespace ch3
