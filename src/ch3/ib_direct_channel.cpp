#include "ch3/ib_direct_channel.hpp"

#include <algorithm>

namespace ch3 {

IbDirectChannel::IbDirectChannel(pmi::Context& ctx, const StackConfig& cfg)
    : ctx_(&ctx),
      cfg_(cfg),
      verbs_(std::make_unique<Verbs>(ctx, cfg.channel)) {}

sim::Task<void> IbDirectChannel::init(EngineHooks& hooks) {
  hooks_ = &hooks;
  co_await verbs_->init();
  mux_ = std::make_unique<StreamMux>(*verbs_,
                                     *static_cast<PacketHandler*>(this));
  cache_ = std::make_unique<rdmach::RegCache>(
      verbs_->pd(), cfg_.channel.reg_cache_capacity,
      cfg_.channel.use_reg_cache);
}

sim::Task<void> IbDirectChannel::finalize() {
  co_await cache_->flush();
  co_await verbs_->finalize();
}

void IbDirectChannel::start_send(int dst, const MatchHeader& hdr,
                                 const void* payload, SendReq* req) {
  if (hdr.length < cfg_.rndv_threshold) {
    PktHeader pkt;
    pkt.type = PktType::kEager;
    pkt.match = hdr;
    mux_->enqueue(dst, pkt, payload, hdr.length, [req] { req->done = true; });
    return;
  }
  // Rendezvous: announce; the data moves only after the CTS.
  const std::uint64_t token = ++next_token_;
  send_rndv_[token] = SendRndv{dst, static_cast<const std::byte*>(payload),
                               hdr.length, req, 0, nullptr};
  PktHeader pkt;
  pkt.type = PktType::kRts;
  pkt.match = hdr;
  pkt.sreq = token;
  mux_->enqueue(dst, pkt, nullptr, 0);
}

void IbDirectChannel::rndv_recv_ready(int src, std::uint64_t token, void* dst,
                                      std::size_t len, std::uint64_t cookie) {
  recv_ready_todo_.push_back(RecvReady{src, token,
                                       static_cast<std::byte*>(dst), len,
                                       cookie});
}

Sink IbDirectChannel::on_packet(int src, const PktHeader& hdr) {
  switch (hdr.type) {
    case PktType::kEager:
      return hooks_->on_eager(src, hdr.match);
    case PktType::kRts:
      hooks_->on_rts(src, hdr.match, hdr.sreq);
      return {};
    case PktType::kCts:
      cts_todo_.push_back(CtsTodo{src, hdr.sreq, hdr.rreq, hdr.raddr,
                                  hdr.rkey});
      return {};
    case PktType::kFin: {
      auto it = recv_mr_.find(hdr.rreq);
      if (it == recv_mr_.end()) {
        throw std::logic_error("FIN for unknown rendezvous receive");
      }
      // MR release is deferred to progress (needs a coroutine).
      fin_done_.push_back(hdr.rreq);
      return {};
    }
  }
  throw std::logic_error("IbDirectChannel: bad packet type");
}

void IbDirectChannel::on_payload_done(int src, const PktHeader& hdr,
                                      const Sink& sink) {
  (void)src;
  hooks_->on_eager_complete(sink, hdr.match);
}

sim::Task<bool> IbDirectChannel::progress_once() {
  bool moved = co_await mux_->progress();

  // Receiver side: matched RTSes -> register the user buffer, send CTS.
  while (!recv_ready_todo_.empty()) {
    RecvReady rr = recv_ready_todo_.back();
    recv_ready_todo_.pop_back();
    ib::MemoryRegion* mr = co_await cache_->acquire(rr.dst, rr.len);
    recv_mr_[rr.cookie] = mr;
    PktHeader cts;
    cts.type = PktType::kCts;
    cts.sreq = rr.token;
    cts.rreq = rr.cookie;
    cts.raddr = reinterpret_cast<std::uint64_t>(rr.dst);
    cts.rkey = mr->rkey();
    mux_->enqueue(rr.src, cts, nullptr, 0);
    moved = true;
  }

  // Sender side: CTS -> register the source buffer and push the data.
  while (!cts_todo_.empty()) {
    CtsTodo cts = cts_todo_.back();
    cts_todo_.pop_back();
    auto it = send_rndv_.find(cts.sreq);
    if (it == send_rndv_.end()) {
      throw std::logic_error("CTS for unknown rendezvous send");
    }
    SendRndv& sr = it->second;
    sr.rreq = cts.rreq;
    sr.mr = co_await cache_->acquire(sr.payload, sr.len);
    const std::uint64_t wr_id = verbs_->next_wr_id();
    verbs_->vconn(cts.src).qp->post_send(ib::SendWr{
        wr_id,
        ib::Opcode::kRdmaWrite,
        {ib::Sge{const_cast<std::byte*>(sr.payload), sr.len, sr.mr->lkey()}},
        cts.raddr,
        cts.rkey,
        /*signaled=*/true});
    // FIN goes out immediately behind the data: RC ordering on the QP
    // guarantees the receiver sees it only after the write has landed, so
    // the receive completes at data arrival instead of a full ack later.
    PktHeader fin;
    fin.type = PktType::kFin;
    fin.rreq = sr.rreq;
    mux_->enqueue(cts.src, fin, nullptr, 0);
    pending_writes_.push_back(PendingWrite{wr_id, cts.sreq});
    moved = true;
  }

  // Sender side: completed data writes -> send-request completion.
  for (std::size_t i = 0; i < pending_writes_.size();) {
    ib::Wc wc;
    if (!verbs_->take_completion(pending_writes_[i].wr_id, &wc)) {
      ++i;
      continue;
    }
    if (wc.status != ib::WcStatus::kSuccess) {
      throw std::logic_error("rendezvous RDMA write failed");
    }
    auto it = send_rndv_.find(pending_writes_[i].sreq);
    SendRndv sr = it->second;
    send_rndv_.erase(it);
    pending_writes_.erase(pending_writes_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    co_await cache_->release(sr.mr);
    sr.req->done = true;
    ++rndv_write_ops_;
    rndv_write_bytes_ += sr.len;
    moved = true;
  }

  // Receiver side: FINs seen by the packet handler -> release + complete.
  while (!fin_done_.empty()) {
    const std::uint64_t rreq = fin_done_.back();
    fin_done_.pop_back();
    auto it = recv_mr_.find(rreq);
    co_await cache_->release(it->second);
    recv_mr_.erase(it);
    hooks_->on_rndv_complete(rreq);
    moved = true;
  }

  co_return moved;
}

sim::Task<void> IbDirectChannel::wait_for_activity() {
  return verbs_->wait_for_activity();
}

std::uint64_t IbDirectChannel::activity_count() const {
  return verbs_->activity_count();
}

}  // namespace ch3
