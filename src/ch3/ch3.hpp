// The CH3 interface.
//
// MPICH2's CH3 is "a layer that implements the ADI3 functions and provides
// an interface consisting of only a dozen functions"; a channel implements
// it (paper section 3.1).  This module defines our CH3 contract between
// the MPI engine (the ADI3 role) and a channel:
//
//   engine -> channel : init / finalize / start_send / rndv_recv_ready /
//                       progress_once / activity waiting
//   channel -> engine : on_eager (sink request), on_eager_complete,
//                       on_rts, on_rndv_complete
//
// Two implementations exist:
//   * AdapterChannel  -- CH3 over the five-function RDMA Channel interface
//                        (the paper's main design): messages are serialized
//                        as [header|payload] byte streams through put/get;
//                        large-message handling (pipelining, zero-copy) is
//                        entirely the RDMA channel's business, which is why
//                        "get is always called after put for large
//                        messages".
//   * IbDirectChannel -- CH3 implemented directly over the verbs layer
//                        (paper section 6): eager messages use the slot
//                        ring, large messages a CH3-level RTS/CTS/FIN
//                        handshake with RDMA *write* (Figure 12).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "ch3/packet.hpp"
#include "rdmach/channel.hpp"
#include "sim/task.hpp"

namespace ch3 {

/// Fatal failure of one virtual connection: the underlying channel
/// declared the peer unreachable (recovery budget exhausted).  Recoverable
/// transport errors never surface at CH3 -- the channel heals them
/// internally; what reaches here is final, and names the peer so the
/// engine (or the application) can fence it off.
class VcError : public std::runtime_error {
 public:
  VcError(int peer, const std::string& what)
      : std::runtime_error(what), peer_(peer) {}
  int peer() const noexcept { return peer_; }

 private:
  int peer_;
};

/// Where an eager payload must be placed (matched user buffer or an
/// engine-owned temporary), plus an engine cookie identifying the message.
struct Sink {
  std::byte* dst = nullptr;
  std::uint64_t cookie = 0;
};

/// Send-request state shared between engine and channel.
struct SendReq {
  bool done = false;
};

/// Engine-side upcalls (implemented by mpi::Engine).
class EngineHooks {
 public:
  virtual ~EngineHooks() = default;

  /// An eager header arrived from `src`; the engine returns the sink the
  /// payload bytes must be delivered to.
  virtual Sink on_eager(int src, const MatchHeader& hdr) = 0;
  /// All `hdr.length` payload bytes have been placed into the sink.
  virtual void on_eager_complete(const Sink& sink, const MatchHeader& hdr) = 0;

  /// A rendezvous RTS arrived; the engine answers -- immediately or after a
  /// matching receive is posted -- by calling rndv_recv_ready(src, token,..).
  virtual void on_rts(int src, const MatchHeader& hdr, std::uint64_t token) = 0;
  /// A rendezvous receive finished (FIN processed; data is in place).
  virtual void on_rndv_complete(std::uint64_t cookie) = 0;
};

class Ch3Channel {
 public:
  virtual ~Ch3Channel() = default;

  virtual sim::Task<void> init(EngineHooks& hooks) = 0;
  virtual sim::Task<void> finalize() = 0;

  /// Starts a (nonblocking) message send; `req->done` flips once the user
  /// buffer may be reused.  Sends on one VC complete in start order.
  virtual void start_send(int dst, const MatchHeader& hdr, const void* payload,
                          SendReq* req) = 0;

  /// Engine response to on_rts: the matching receive's buffer.  `cookie` is
  /// handed back through on_rndv_complete.
  virtual void rndv_recv_ready(int src, std::uint64_t token, void* dst,
                               std::size_t len, std::uint64_t cookie) = 0;

  /// Advances sends and receives on all VCs; returns true if anything moved.
  virtual sim::Task<bool> progress_once() = 0;

  /// Blocking wait for possible new activity (paired with activity_count()).
  virtual sim::Task<void> wait_for_activity() = 0;
  virtual std::uint64_t activity_count() const = 0;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Protocol/traffic counters of the transport underneath (empty when the
  /// implementation keeps none).
  virtual rdmach::ChannelStats channel_stats() const {
    return rdmach::ChannelStats{};
  }

  /// Zeroes the counters behind channel_stats() (see Channel::reset_stats)
  /// so a harness can measure one workload phase exactly, bootstrap
  /// traffic excluded.  No-op when the implementation keeps none.
  virtual void reset_channel_stats() {}

  /// One-sided RMA accounting hook (mpi::Window): the window's traffic
  /// rides a dedicated QP mesh, so the op counts are noted into the
  /// transport's stats rather than observed by its data path.  No-op when
  /// the implementation keeps no stats.
  virtual void note_rma(rdmach::RmaOp) {}
};

/// Which CH3 implementation an MPI job runs on.
enum class Stack { kRdmaChannel, kCh3Direct };

const char* to_string(Stack s);

struct StackConfig {
  Stack stack = Stack::kRdmaChannel;
  rdmach::ChannelConfig channel;
  /// CH3-direct only: messages >= this go rendezvous (RDMA write).
  std::size_t rndv_threshold = 32 * 1024;
};

std::unique_ptr<Ch3Channel> make_channel(pmi::Context& ctx,
                                         const StackConfig& cfg);

}  // namespace ch3
