// CH3 implemented directly over the verbs layer -- paper section 6.
//
// Eager messages and rendezvous control packets stream through the same
// piggybacked/pipelined slot rings as the RDMA-channel designs, but large
// messages use a CH3-level handshake with RDMA *write* (Figure 12):
//
//   sender                          receiver
//     | --- RTS {envelope, sreq} ---> |   (match; register user buffer)
//     | <-- CTS {raddr, rkey, rreq} - |
//     | ===== RDMA write data ======> |   (straight into the user buffer)
//     | --- FIN {rreq} -------------> |   (receive completes)
//
// Because raw RDMA write outperforms RDMA read for mid-sized messages
// (Figure 15), this design wins over the read-based RDMA-channel zero-copy
// in the 32K-256K band (Figure 14) -- an artifact of the verbs, not of the
// channel abstraction.
#pragma once

#include <unordered_map>
#include <vector>

#include "ch3/ch3.hpp"
#include "ch3/stream_mux.hpp"
#include "rdmach/piggyback_channel.hpp"
#include "rdmach/reg_cache.hpp"

namespace ch3 {

class IbDirectChannel : public Ch3Channel, private PacketHandler {
 public:
  IbDirectChannel(pmi::Context& ctx, const StackConfig& cfg);

  sim::Task<void> init(EngineHooks& hooks) override;
  sim::Task<void> finalize() override;
  void start_send(int dst, const MatchHeader& hdr, const void* payload,
                  SendReq* req) override;
  void rndv_recv_ready(int src, std::uint64_t token, void* dst,
                       std::size_t len, std::uint64_t cookie) override;
  sim::Task<bool> progress_once() override;
  sim::Task<void> wait_for_activity() override;
  std::uint64_t activity_count() const override;
  int rank() const override { return ctx_->rank; }
  int size() const override { return ctx_->size; }

  rdmach::RegCache& reg_cache() noexcept { return *cache_; }

  /// Slot-ring eager traffic from the verbs member, plus the CH3-level
  /// write-rendezvous volume this class drives itself.
  rdmach::ChannelStats channel_stats() const override {
    rdmach::ChannelStats s = verbs_->stats();
    s.rndv_write.ops += rndv_write_ops_;
    s.rndv_write.bytes += rndv_write_bytes_;
    return s;
  }
  void reset_channel_stats() override {
    verbs_->reset_stats();
    rndv_write_ops_ = 0;
    rndv_write_bytes_ = 0;
  }
  void note_rma(rdmach::RmaOp op) override { verbs_->note_rma(op); }

 private:
  /// Exposes the protected verbs plumbing of the slot-ring channel that
  /// the rendezvous path needs (QPs, WR ids, completion stash).
  class Verbs : public rdmach::PipelineChannel {
   public:
    using rdmach::PipelineChannel::PipelineChannel;
    using rdmach::PipelineChannel::next_wr_id;
    using rdmach::PipelineChannel::take_completion;
    rdmach::VerbsConnection& vconn(int p) {
      return static_cast<rdmach::VerbsConnection&>(connection(p));
    }
  };

  struct SendRndv {
    int dst = -1;
    const std::byte* payload = nullptr;
    std::size_t len = 0;
    SendReq* req = nullptr;
    std::uint64_t rreq = 0;  // learned from CTS
    ib::MemoryRegion* mr = nullptr;
  };

  struct CtsTodo {
    int src;
    std::uint64_t sreq, rreq, raddr;
    std::uint32_t rkey;
  };
  struct RecvReady {
    int src;
    std::uint64_t token;
    std::byte* dst;
    std::size_t len;
    std::uint64_t cookie;
  };
  struct PendingWrite {
    std::uint64_t wr_id;
    std::uint64_t sreq;
  };

  Sink on_packet(int src, const PktHeader& hdr) override;
  void on_payload_done(int src, const PktHeader& hdr,
                       const Sink& sink) override;

  pmi::Context* ctx_;
  StackConfig cfg_;
  std::unique_ptr<Verbs> verbs_;
  std::unique_ptr<StreamMux> mux_;
  std::unique_ptr<rdmach::RegCache> cache_;
  EngineHooks* hooks_ = nullptr;

  std::uint64_t next_token_ = 0;
  std::unordered_map<std::uint64_t, SendRndv> send_rndv_;
  std::unordered_map<std::uint64_t, ib::MemoryRegion*> recv_mr_;  // by rreq
  std::vector<CtsTodo> cts_todo_;
  std::vector<RecvReady> recv_ready_todo_;
  std::vector<PendingWrite> pending_writes_;
  std::vector<std::uint64_t> fin_done_;
  std::uint64_t rndv_write_ops_ = 0;
  std::uint64_t rndv_write_bytes_ = 0;
};

}  // namespace ch3
