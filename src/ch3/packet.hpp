// CH3 packet definitions.
//
// Every MPI message is framed by a fixed-size packet header carrying the
// envelope (source, tag, context) and -- for the rendezvous protocol of the
// CH3 direct channel (paper section 6, Figure 12) -- the control fields of
// the RTS/CTS/FIN handshake.
#pragma once

#include <cstdint>

namespace ch3 {

/// MPI envelope: what the matching engine matches on.
struct MatchHeader {
  std::int32_t src = -1;         // sender's rank in the communicator
  std::int32_t tag = 0;
  std::uint64_t context_id = 0;  // communicator context
  std::uint64_t length = 0;      // payload bytes
};

enum class PktType : std::uint32_t {
  kEager = 0xE1,  // header immediately followed by `length` payload bytes
  kRts = 0xE2,    // rendezvous request-to-send (no payload follows)
  kCts = 0xE3,    // clear-to-send: receiver buffer {addr, rkey}
  kFin = 0xE4,    // rendezvous data has been RDMA-written
};

struct PktHeader {
  PktType type = PktType::kEager;
  std::uint32_t rkey = 0;        // kCts
  MatchHeader match;             // kEager / kRts
  std::uint64_t sreq = 0;        // sender-side request token (kRts/kCts)
  std::uint64_t rreq = 0;        // receiver-side request token (kCts/kFin)
  std::uint64_t raddr = 0;       // kCts: receiver buffer address
  std::uint64_t reserved = 0;    // pad the frame to 64 bytes
};
static_assert(sizeof(PktHeader) == 64);

}  // namespace ch3
