// CH3 over the RDMA Channel interface -- the paper's primary architecture.
//
// Every message (any size) is serialized as [PktHeader | payload] into the
// per-VC byte pipe; the underlying RDMA Channel design (basic, piggyback,
// pipeline, zero-copy) decides how the bytes actually move.  In particular
// the zero-copy channel sees the payload as a separate large iov, sends its
// RTS in-stream, and the receive side's get() lands the RDMA read directly
// in the matched user buffer -- so MPI-level zero-copy falls out of the
// channel abstraction with no CH3-level protocol at all.
#pragma once

#include "ch3/ch3.hpp"
#include "ch3/stream_mux.hpp"

namespace ch3 {

class AdapterChannel : public Ch3Channel, private PacketHandler {
 public:
  AdapterChannel(pmi::Context& ctx, const StackConfig& cfg)
      : ctx_(&ctx), ch_(rdmach::Channel::create(ctx, cfg.channel)) {}

  sim::Task<void> init(EngineHooks& hooks) override {
    hooks_ = &hooks;
    co_await ch_->init();
    // Explicit cast: the private-base conversion must happen here, inside
    // the class, not in make_unique's forwarding context.
    mux_ = std::make_unique<StreamMux>(*ch_,
                                       *static_cast<PacketHandler*>(this));
  }

  sim::Task<void> finalize() override { co_await ch_->finalize(); }

  void start_send(int dst, const MatchHeader& hdr, const void* payload,
                  SendReq* req) override {
    PktHeader pkt;
    pkt.type = PktType::kEager;
    pkt.match = hdr;
    mux_->enqueue(dst, pkt, payload, hdr.length,
                  [req] { req->done = true; });
  }

  void rndv_recv_ready(int, std::uint64_t, void*, std::size_t,
                       std::uint64_t) override {
    // Never reached: this channel emits no RTS packets (rendezvous is the
    // RDMA channel's internal business).
    throw std::logic_error("AdapterChannel has no CH3-level rendezvous");
  }

  sim::Task<bool> progress_once() override { return mux_->progress(); }

  sim::Task<void> wait_for_activity() override {
    return ch_->wait_for_activity();
  }
  std::uint64_t activity_count() const override {
    return ch_->activity_count();
  }

  int rank() const override { return ctx_->rank; }
  int size() const override { return ctx_->size; }

  rdmach::ChannelStats channel_stats() const override { return ch_->stats(); }
  void reset_channel_stats() override { ch_->reset_stats(); }
  void note_rma(rdmach::RmaOp op) override { ch_->note_rma(op); }

  rdmach::Channel& channel() noexcept { return *ch_; }

 private:
  Sink on_packet(int src, const PktHeader& hdr) override {
    if (hdr.type != PktType::kEager) {
      throw std::logic_error("AdapterChannel: unexpected packet type");
    }
    return hooks_->on_eager(src, hdr.match);
  }
  void on_payload_done(int src, const PktHeader& hdr,
                       const Sink& sink) override {
    (void)src;
    hooks_->on_eager_complete(sink, hdr.match);
  }

  pmi::Context* ctx_;
  std::unique_ptr<rdmach::Channel> ch_;
  std::unique_ptr<StreamMux> mux_;
  EngineHooks* hooks_ = nullptr;
};

}  // namespace ch3
