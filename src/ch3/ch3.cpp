#include "ch3/ch3.hpp"

#include "ch3/adapter_channel.hpp"
#include "ch3/ib_direct_channel.hpp"

namespace ch3 {

const char* to_string(Stack s) {
  switch (s) {
    case Stack::kRdmaChannel:
      return "rdma-channel";
    case Stack::kCh3Direct:
      return "ch3-direct";
  }
  return "unknown";
}

std::unique_ptr<Ch3Channel> make_channel(pmi::Context& ctx,
                                         const StackConfig& cfg) {
  switch (cfg.stack) {
    case Stack::kRdmaChannel:
      return std::make_unique<AdapterChannel>(ctx, cfg);
    case Stack::kCh3Direct:
      return std::make_unique<IbDirectChannel>(ctx, cfg);
  }
  throw std::invalid_argument("unknown CH3 stack");
}

}  // namespace ch3
