// Deterministic fault-schedule injection.
//
// `inject_error_rate` (ib/config.hpp) models *random* attempt failures; it
// cannot express "kill exactly the 3rd WQE node0 posts", which is what the
// connection-recovery tests need.  A FaultSchedule holds per-scope kill
// plans keyed by a running operation counter: instrumented subsystems call
// check(scope) once per operation and receive the scheduled fault, if any.
// Scopes are plain strings chosen by the instrumentation site (the QP send
// engines use the initiator node's name), so one schedule can steer many
// components.  The simulation is single-threaded and event order is
// deterministic, so the Nth operation of a scope is the same operation in
// every run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace sim {

class FaultSchedule {
 public:
  struct Fault {
    /// A fatal fault models real RC retry exhaustion: the victim completes
    /// with a transport error AND the QP transitions to the error state
    /// (subsequent WQEs flush).  A non-fatal fault drops only the victim --
    /// useful for single-WQE tests, but note it breaks the in-order
    /// delivery guarantee for anything posted behind the victim.
    bool fatal = true;
  };

  /// Kills the `nth` (0-based) operation observed in `scope`.
  void kill(const std::string& scope, std::uint64_t nth, bool fatal = true) {
    scopes_[scope].kills[nth] = Fault{fatal};
  }

  /// Kills every operation in `scope` from index `from` onward (retry-budget
  /// exhaustion scenarios: nothing ever gets through again).
  void kill_from(const std::string& scope, std::uint64_t from,
                 bool fatal = true) {
    scopes_[scope].all_from = std::make_pair(from, Fault{fatal});
  }

  /// Instrumentation hook: counts one operation in `scope` and returns the
  /// fault scheduled for it, if any.
  std::optional<Fault> check(const std::string& scope) {
    Scope& s = scopes_[scope];
    const std::uint64_t idx = s.count++;
    std::optional<Fault> hit;
    if (auto it = s.kills.find(idx); it != s.kills.end()) hit = it->second;
    if (!hit && s.all_from && idx >= s.all_from->first) {
      hit = s.all_from->second;
    }
    if (hit) ++killed_;
    return hit;
  }

  /// Operations observed so far in `scope`.
  std::uint64_t observed(const std::string& scope) const {
    auto it = scopes_.find(scope);
    return it == scopes_.end() ? 0 : it->second.count;
  }

  /// Total faults delivered across all scopes.
  std::uint64_t killed() const noexcept { return killed_; }

 private:
  struct Scope {
    std::map<std::uint64_t, Fault> kills;
    std::optional<std::pair<std::uint64_t, Fault>> all_from;
    std::uint64_t count = 0;
  };

  std::map<std::string, Scope> scopes_;
  std::uint64_t killed_ = 0;
};

}  // namespace sim
