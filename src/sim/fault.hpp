// Deterministic fault-schedule injection.
//
// `inject_error_rate` (ib/config.hpp) models *random* attempt failures; it
// cannot express "kill exactly the 3rd WQE node0 posts", which is what the
// connection-recovery tests need.  A FaultSchedule holds per-scope fault
// plans keyed by a running operation counter: instrumented subsystems call
// check(scope) once per operation and receive the scheduled fault, if any.
// Scopes are plain strings chosen by the instrumentation site (the QP send
// engines use the initiator node's name; resource sites append a suffix --
// "<node>.reg" for memory registration, "<node>.cq" for CQE delivery,
// "<node>.credit" for ring-credit grants), so one schedule can steer many
// components.  The simulation is single-threaded and event order is
// deterministic, so the Nth operation of a scope is the same operation in
// every run.
//
// Four fault kinds:
//   * kKill    -- the operation dies (transport error; optionally fatal to
//                 the QP, modelling RC retry exhaustion).
//   * kCorrupt -- the operation SUCCEEDS but its payload is bit-flipped in
//                 flight, modelling an undetected link/DMA error.  Only
//                 meaningful at data-moving sites; elsewhere it degrades to
//                 a non-fatal kill.
//   * kExhaust -- the operation is refused by a temporarily exhausted
//                 resource (registration failure, CQ overrun, no ring
//                 credit).  Non-fatal by construction: the resource comes
//                 back once the scheduled window passes.
//   * kDegrade -- gray failure: the operation still completes, but its link
//                 service-time model is perturbed (extra latency, reduced
//                 bandwidth, probabilistic retransmits).  Unlike the
//                 fail-stop kinds, degrades HEAL: they apply to an op-index
//                 window [from, until) and the scope returns to full health
//                 afterwards.  Delivered through degrade_at(), not check(),
//                 because a degrade is a property of a window of operations
//                 rather than of one victim op.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sim {

class FaultSchedule {
 public:
  struct Fault {
    enum class Kind { kKill, kCorrupt, kExhaust, kDegrade };
    Kind kind = Kind::kKill;
    /// kKill only.  A fatal fault models real RC retry exhaustion: the
    /// victim completes with a transport error AND the QP transitions to
    /// the error state (subsequent WQEs flush).  A non-fatal fault drops
    /// only the victim -- useful for single-WQE tests, but note it breaks
    /// the in-order delivery guarantee for anything posted behind the
    /// victim.
    bool fatal = true;
  };

  /// Gray-failure shape applied to operations inside a degrade window.  A
  /// default-constructed spec is a no-op (active() == false); composing two
  /// specs stacks their effects (latencies add, multipliers multiply, drop
  /// probabilities combine as independent events).
  struct DegradeSpec {
    std::int64_t latency_add = 0;  ///< extra wire latency, ticks (ns)
    double latency_mult = 1.0;     ///< wire-latency multiplier
    double bandwidth_mult = 1.0;   ///< link-rate multiplier (0.1 = 10 % bw)
    double drop_prob = 0.0;        ///< per-attempt loss -> link-level retry
    bool active() const noexcept {
      return latency_add != 0 || latency_mult != 1.0 ||
             bandwidth_mult != 1.0 || drop_prob != 0.0;
    }
    void compose(const DegradeSpec& o) noexcept {
      latency_add += o.latency_add;
      latency_mult *= o.latency_mult;
      bandwidth_mult *= o.bandwidth_mult;
      drop_prob = 1.0 - (1.0 - drop_prob) * (1.0 - o.drop_prob);
    }
  };

  /// Scope string the QP engines consult once per WQE initiated through
  /// rail `rail` of `node` -- the per-rail failure domain of the multirail
  /// fabric.  Any fault kind scheduled here takes the port down, sticky.
  static std::string rail_scope(const std::string& node, int rail) {
    return node + ".rail" + std::to_string(rail);
  }

  /// Kills rail `rail` of `node` at its `from`th WQE (and everything after:
  /// a dead port never comes back; surviving rails absorb the stripe set).
  void rail_down(const std::string& node, int rail, std::uint64_t from = 0) {
    kill_from(rail_scope(node, rail), from);
  }

  /// Permanently kills the process on `node` once it has initiated `at_op`
  /// WQEs (0 = dead from the start).  Unlike kill_from, death is symmetric:
  /// every WQE initiated *by* the node and every WQE initiated *towards* it
  /// errors forever, and reconnect/lazy-connect attempts against it can
  /// never succeed.  Instrumentation queries node_dead() rather than
  /// check(), since death is a property of the endpoint, not of one scope's
  /// op counter.
  void rank_down(const std::string& node, std::uint64_t at_op = 0) {
    rank_down_at_[node] = at_op;
  }

  /// True once `node` is past its rank_down threshold.  The threshold is
  /// measured against the node's own initiated-WQE scope counter, so
  /// "die at op N" is deterministic across runs.  Sticky.
  bool node_dead(const std::string& node) const {
    auto it = rank_down_at_.find(node);
    if (it == rank_down_at_.end()) return false;
    return observed(node) >= it->second;
  }

  /// Any rank_down rules armed at all?  Lets hot paths skip the map lookup
  /// when no process faults are scheduled (fault-free traces stay
  /// bit-identical).
  bool any_rank_down() const noexcept { return !rank_down_at_.empty(); }

  /// Kills the `nth` (0-based) operation observed in `scope`.
  void kill(const std::string& scope, std::uint64_t nth, bool fatal = true) {
    scopes_[scope].plans[nth] = Fault{Fault::Kind::kKill, fatal};
  }

  /// Kills every operation in `scope` from index `from` onward (retry-budget
  /// exhaustion scenarios: nothing ever gets through again).
  void kill_from(const std::string& scope, std::uint64_t from,
                 bool fatal = true) {
    scopes_[scope].all_from = std::make_pair(from, Fault{Fault::Kind::kKill, fatal});
  }

  /// Corrupts the `nth` operation: it is delivered as a success with its
  /// payload bit-flipped (silent data corruption unless a checksum catches
  /// it).
  void corrupt(const std::string& scope, std::uint64_t nth) {
    scopes_[scope].plans[nth] = Fault{Fault::Kind::kCorrupt, false};
  }

  /// Denies operations [from, from + n) with a temporary resource-exhaustion
  /// failure; the resource recovers afterwards.
  void exhaust(const std::string& scope, std::uint64_t from,
               std::uint64_t n = 1) {
    Scope& s = scopes_[scope];
    for (std::uint64_t i = 0; i < n; ++i) {
      s.plans[from + i] = Fault{Fault::Kind::kExhaust, false};
    }
  }

  /// Degrades operations [from, until) of `scope` with `spec`.  Heals: ops
  /// at index >= until see full health again.  Windows stack: an op covered
  /// by several windows sees their composed spec.  Degrades live beside the
  /// fail-stop plans and never consume check() victim slots, so a degrade
  /// window and a kill can target the same op index independently.
  void degrade(const std::string& scope, std::uint64_t from,
               std::uint64_t until, DegradeSpec spec) {
    scopes_[scope].degrades.push_back(
        DegradeWindow{from, until, spec, /*period=*/0, /*duty=*/0});
    ++degrade_windows_;
  }

  /// Intermittent degrade: within [from, until), op i is degraded iff
  /// ((i - from) % period) < duty -- `duty` bad ops out of every `period`,
  /// modelling a flapping link.  period == 0 degenerates to degrade().
  void flaky(const std::string& scope, DegradeSpec spec, std::uint64_t period,
             std::uint64_t duty, std::uint64_t from = 0,
             std::uint64_t until = kForever) {
    scopes_[scope].degrades.push_back(
        DegradeWindow{from, until, spec, period, duty});
    ++degrade_windows_;
  }

  /// Any degrade windows armed at all?  Hot-path guard mirroring
  /// any_rank_down(): fault-free traces skip the per-op window scan.
  bool any_degrade() const noexcept { return degrade_windows_ > 0; }

  /// Composed degrade spec covering operation `idx` of `scope` (the same
  /// op counter check() advances: call check() first, then query index
  /// observed(scope) - 1).  Returns an inactive spec outside all windows.
  DegradeSpec degrade_at(const std::string& scope, std::uint64_t idx) {
    DegradeSpec out;
    auto it = scopes_.find(scope);
    if (it == scopes_.end()) return out;
    for (const DegradeWindow& w : it->second.degrades) {
      if (w.covers(idx)) out.compose(w.spec);
    }
    if (out.active()) ++degraded_ops_;
    return out;
  }

  /// Operations that have fallen inside an active degrade window so far.
  std::uint64_t degraded_ops() const noexcept { return degraded_ops_; }

  /// Instrumentation hook: counts one operation in `scope` and returns the
  /// fault scheduled for it, if any.
  std::optional<Fault> check(const std::string& scope) {
    Scope& s = scopes_[scope];
    const std::uint64_t idx = s.count++;
    std::optional<Fault> hit;
    if (auto it = s.plans.find(idx); it != s.plans.end()) hit = it->second;
    if (!hit && s.all_from && idx >= s.all_from->first) {
      hit = s.all_from->second;
    }
    if (hit) ++delivered_;
    return hit;
  }

  /// Operations observed so far in `scope`.
  std::uint64_t observed(const std::string& scope) const {
    auto it = scopes_.find(scope);
    return it == scopes_.end() ? 0 : it->second.count;
  }

  /// Total faults delivered across all scopes (all kinds).
  std::uint64_t killed() const noexcept { return delivered_; }

  /// Sentinel "never heals" window end for degrade()/flaky().
  static constexpr std::uint64_t kForever =
      ~static_cast<std::uint64_t>(0);

 private:
  struct DegradeWindow {
    std::uint64_t from = 0;
    std::uint64_t until = kForever;  // [from, until)
    DegradeSpec spec;
    std::uint64_t period = 0;  // 0 = steady window
    std::uint64_t duty = 0;    // degraded ops per period
    bool covers(std::uint64_t idx) const noexcept {
      if (idx < from || idx >= until) return false;
      if (period == 0) return true;
      return ((idx - from) % period) < duty;
    }
  };

  struct Scope {
    std::map<std::uint64_t, Fault> plans;
    std::optional<std::pair<std::uint64_t, Fault>> all_from;
    std::vector<DegradeWindow> degrades;
    std::uint64_t count = 0;
  };

  std::map<std::string, Scope> scopes_;
  std::map<std::string, std::uint64_t> rank_down_at_;
  std::uint64_t delivered_ = 0;
  std::uint64_t degrade_windows_ = 0;
  std::uint64_t degraded_ops_ = 0;
};

}  // namespace sim
