// Free-list buffer pool for the DES hot path.
//
// At 256-1024 simulated ranks the dominant allocator traffic is the HCA
// engines' per-WQE staging buffers (gather/scatter copies of every RDMA
// write, send, and read response).  BufferPool recycles those vectors: an
// acquire() reuses a previously released buffer's storage when one is
// available and only falls back to the allocator on a miss.  Buffers are
// handed out as shared_ptrs whose deleter returns the storage to the pool,
// so a buffer captured by a delivery event queued behind the pool's owner
// still dies safely: the free list is held alive by the deleter itself.
//
// Not thread-safe (the simulation is single-threaded by construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sim {

class BufferPool {
 public:
  using Buffer = std::shared_ptr<std::vector<std::byte>>;

  /// A buffer of exactly `n` bytes (contents unspecified -- every user
  /// overwrites the full extent before reading).  Returns pooled storage
  /// when available, allocating only on a miss.
  Buffer acquire(std::size_t n) {
    std::vector<std::byte>* v = nullptr;
    if (!state_->free.empty()) {
      v = state_->free.back().release();
      state_->free.pop_back();
      ++state_->hits;
    } else {
      v = new std::vector<std::byte>();
      ++state_->misses;
    }
    v->resize(n);
    // The deleter owns a reference to the shared free-list state, not to
    // the pool object: buffers may outlive the BufferPool's owner.
    auto st = state_;
    return Buffer(v, [st](std::vector<std::byte>* p) {
      if (st->free.size() < kMaxFree) {
        st->free.emplace_back(p);
      } else {
        delete p;
      }
    });
  }

  std::uint64_t hits() const noexcept { return state_->hits; }
  std::uint64_t misses() const noexcept { return state_->misses; }

 private:
  /// Free-list cap: beyond this the storage is simply freed, bounding the
  /// pool's resident memory under bursty fan-out.
  static constexpr std::size_t kMaxFree = 4096;

  struct State {
    std::vector<std::unique_ptr<std::vector<std::byte>>> free;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace sim
