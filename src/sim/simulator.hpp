// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and a time-ordered event queue whose
// entries are coroutine handles to resume.  It is strictly single-threaded:
// concurrency between simulated processes is interleaving at co_await
// points, which makes every run bit-for-bit deterministic (events at equal
// timestamps are processed in scheduling order).
//
// Processes come in two flavours:
//   * spawn(task, name)        -- a root process that is expected to finish;
//                                 run() reports a deadlock if the event queue
//                                 drains while any such process is blocked.
//   * spawn_daemon(task, name) -- a service loop (progress engine, HCA
//                                 engine, ...) that may legitimately remain
//                                 blocked forever; ignored by the deadlock
//                                 check and discarded when the run ends.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sim {

/// Thrown by run() when a root process exits via an exception.
class ProcessError : public std::runtime_error {
 public:
  ProcessError(std::string process, std::string what)
      : std::runtime_error("process '" + process + "' failed: " + what),
        process_(std::move(process)) {}
  const std::string& process() const noexcept { return process_; }

 private:
  std::string process_;
};

/// Thrown by run() when the event queue drains while root processes are
/// still blocked (a lost wakeup / protocol deadlock in the simulated code).
class DeadlockError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Tick now() const noexcept { return now_; }

  /// Schedules `h` to resume at absolute time `at` (clamped to now()).
  /// Events with equal time fire in scheduling order.
  void schedule(Tick at, std::coroutine_handle<> h);

  /// Schedules a plain callback at absolute time `at` (clamped to now()).
  /// Used for fire-and-forget completion events that need no coroutine
  /// frame (data delivery, CQE generation).
  void call_at(Tick at, std::function<void()> fn);

  /// Awaitable: resumes the caller `d` ticks from now.  delay(0) still
  /// suspends, acting as a deterministic yield behind already-queued events.
  auto delay(Tick d) {
    struct Awaiter {
      Simulator& sim;
      Tick at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim.schedule(at, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, now_ + (d > 0 ? d : 0)};
  }

  /// Awaitable: resumes the caller at absolute time `t` (>= now).
  auto delay_until(Tick t) { return delay(t > now_ ? t - now_ : 0); }

  /// Adopts `proc` as a root process; it starts at the current time, behind
  /// events already queued.
  void spawn(Task<void> proc, std::string name = "process");

  /// Adopts `proc` as a daemon (see file comment).
  void spawn_daemon(Task<void> proc, std::string name = "daemon");

  /// Runs until the event queue is empty.  Throws ProcessError if a root
  /// process failed, DeadlockError if any root process is still blocked
  /// when the queue drains.
  void run();

  /// Runs events with timestamp <= t, then stops (clock advances to t).
  /// Does not perform the deadlock check.  Returns the final clock.
  Tick run_until(Tick t);

  std::size_t events_processed() const noexcept { return events_processed_; }
  std::size_t live_root_processes() const noexcept;

  /// Shared staging-buffer pool for the DES hot path (HCA engines).
  BufferPool& buffer_pool() noexcept { return pool_; }

  /// Hot-path micro-counters for the perf-smoke guards: dispatched events
  /// plus buffer-pool hit/miss totals (a pooling regression shows up as
  /// misses growing with the op count instead of plateauing).
  struct Stats {
    std::uint64_t events_dispatched = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
  };
  Stats stats() const noexcept {
    return Stats{events_processed_, pool_.hits(), pool_.misses()};
  }

 private:
  struct ProcessState {
    Simulator* sim = nullptr;
    std::string name;
    bool finished = false;
    bool daemon = false;
    std::exception_ptr error{};
    std::coroutine_handle<> root{};
  };

  struct RootTask;
  static RootTask root_runner(Task<void> inner);
  void adopt(Task<void> proc, std::string name, bool daemon);
  void drain(Tick limit, bool bounded);

  struct Event {
    Tick at;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    std::function<void()> fn;
    bool operator>(const Event& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  // Declared before queue_: queued delivery events may hold pooled buffers,
  // whose deleters must still find a live free-list state at teardown (the
  // state itself is shared_ptr-owned, so even this ordering is belt and
  // braces).
  BufferPool pool_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<ProcessState>> processes_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_processed_ = 0;
  ProcessState* failed_ = nullptr;
};

}  // namespace sim
