// Deterministic pseudo-random number generation for workloads and failure
// injection.  SplitMix64 seeding + xoshiro256** core; no dependence on
// std::random_device so every run of every benchmark is reproducible.
#pragma once

#include <array>
#include <cstdint>

namespace sim {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) (n > 0), via Lemire's multiply-shift with a
  /// rejection loop for exactness.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(n);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sim
