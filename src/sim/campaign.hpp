// Phased fault campaigns.
//
// A FaultSchedule (fault.hpp) keys faults to per-scope operation counters,
// which is exact but blind to *workload* progress: "kill node1's 40th WQE"
// lands somewhere unknowable inside a NAS kernel, and the interesting
// questions -- does recovery survive a kill in every iteration? what does a
// corruption during the alltoall phase cost? -- need faults armed relative
// to where the kernel currently is.  A FaultCampaign closes that gap: the
// workload reports progress events ("is.iter" occurred, "ft.pass"
// occurred, ...) through on_phase(), and declarative rules built with
// at_phase() arm faults into the underlying schedule *relative to the
// operation counts observed at that moment* -- "at every 3rd IS iteration,
// kill rank 2's next WQE" is
//
//     campaign.at_phase("is.iter").repeat_every(3).kill(2);
//
// Rules are evaluated deterministically (the simulation is single-threaded
// and phase events are totally ordered), and the campaign carries a seeded
// Rng so randomized soaks derive every choice from one reproducible seed.
//
// Scope naming follows the pmi convention: rank R runs on node "nodeR", so
// rank-addressed rules map to the schedule scopes "nodeR" (WQEs),
// "nodeR.reg"/".cq"/".credit" (resources), and "nodeR.railK" (rails).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault.hpp"
#include "sim/rng.hpp"

namespace sim {

class FaultCampaign {
 public:
  explicit FaultCampaign(std::uint64_t seed = 1) : rng_(seed) {}

  /// One declarative injection rule bound to a phase key.  Builder calls
  /// accumulate actions; occurrence modifiers (from/repeat_every/times)
  /// select which phase occurrences fire them.  All actions arm faults at
  /// `observed(scope) + delta`, i.e. `delta` operations *after* the
  /// workload reported the phase -- delta 0 is the very next operation.
  class Rule {
   public:
    /// Kill rank's `delta`-th next WQE (fatal: the QP errors and flushes).
    Rule& kill(int rank, std::uint64_t delta = 0, bool fatal = true) {
      actions_.push_back({Action::kKill, rank, delta, 1, 0, fatal});
      return *this;
    }
    /// Corrupt the payload of rank's `delta`-th next WQE (delivered as a
    /// success; only an end-to-end integrity check can catch it).
    Rule& corrupt(int rank, std::uint64_t delta = 0) {
      actions_.push_back({Action::kCorrupt, rank, delta, 1, 0, false});
      return *this;
    }
    /// Deny rank's next `n` memory registrations starting `delta` from now.
    Rule& exhaust_reg(int rank, std::uint64_t n = 1, std::uint64_t delta = 0) {
      actions_.push_back({Action::kExhaustReg, rank, delta, n, 0, false});
      return *this;
    }
    /// Drop rank's next `n` CQE deliveries into the overrun buffer.
    Rule& exhaust_cq(int rank, std::uint64_t n = 1, std::uint64_t delta = 0) {
      actions_.push_back({Action::kExhaustCq, rank, delta, n, 0, false});
      return *this;
    }
    /// Withhold rank's next `n` ring-credit grants.
    Rule& exhaust_credit(int rank, std::uint64_t n = 1,
                         std::uint64_t delta = 0) {
      actions_.push_back({Action::kExhaustCredit, rank, delta, n, 0, false});
      return *this;
    }
    /// Take rank's rail `rail` down at its next WQE (sticky: a dead port
    /// never comes back; surviving rails absorb the traffic).
    Rule& rail_down(int rank, int rail) {
      actions_.push_back({Action::kRailDown, rank, 0, 1, rail, true});
      return *this;
    }
    /// Gray-degrade rank's next `n_ops` WQEs (node scope) with `spec`,
    /// starting `delta` operations from the phase event.  Heals after the
    /// window.
    Rule& degrade(int rank, FaultSchedule::DegradeSpec spec,
                  std::uint64_t n_ops, std::uint64_t delta = 0) {
      Action a{Action::kDegrade, rank, delta, n_ops, 0, false};
      a.spec = spec;
      actions_.push_back(a);
      return *this;
    }
    /// Gray-degrade the next `n_ops` WQEs initiated through rank's rail
    /// `rail` -- the per-rail failure domain, so only that rail slows down.
    Rule& degrade_rail(int rank, int rail, FaultSchedule::DegradeSpec spec,
                       std::uint64_t n_ops, std::uint64_t delta = 0) {
      Action a{Action::kDegrade, rank, delta, n_ops, rail, false};
      a.spec = spec;
      a.rail_scoped = true;
      actions_.push_back(a);
      return *this;
    }
    /// Intermittent degrade of rank's rail `rail`: inside the next `n_ops`
    /// WQEs, `duty` out of every `period` are degraded (flapping link).
    Rule& flaky_rail(int rank, int rail, FaultSchedule::DegradeSpec spec,
                     std::uint64_t period, std::uint64_t duty,
                     std::uint64_t n_ops, std::uint64_t delta = 0) {
      Action a{Action::kFlaky, rank, delta, n_ops, rail, false};
      a.spec = spec;
      a.rail_scoped = true;
      a.period = period;
      a.duty = duty;
      actions_.push_back(a);
      return *this;
    }

    /// Fire on every `n`th matching occurrence (1 = every occurrence, the
    /// default; 3 = occurrences 0, 3, 6, ... counting from `from()`).
    Rule& repeat_every(int n) {
      every_ = n > 0 ? n : 1;
      return *this;
    }
    /// Skip the first `k` occurrences of the phase.
    Rule& from(int k) {
      from_ = k > 0 ? k : 0;
      return *this;
    }
    /// Fire at most `n` times over the campaign.
    Rule& times(int n) {
      max_firings_ = n;
      return *this;
    }
    Rule& once() { return times(1); }
    /// Adds Rng-drawn jitter in [0, max_delta] to every armed delta, so a
    /// seeded campaign scatters its hits across the phase's traffic instead
    /// of always striking the same operation.
    Rule& jitter(std::uint64_t max_delta) {
      jitter_ = max_delta;
      return *this;
    }

    int firings() const noexcept { return firings_; }

   private:
    friend class FaultCampaign;
    struct Action {
      enum Kind {
        kKill,
        kCorrupt,
        kExhaustReg,
        kExhaustCq,
        kExhaustCredit,
        kRailDown,
        kDegrade,
        kFlaky,
      };
      Kind kind;
      int rank;
      std::uint64_t delta;
      std::uint64_t n;
      int rail;
      bool fatal;
      FaultSchedule::DegradeSpec spec{};
      bool rail_scoped = false;
      std::uint64_t period = 0;
      std::uint64_t duty = 0;
    };
    std::string phase_;
    std::vector<Action> actions_;
    int every_ = 1;
    int from_ = 0;
    int max_firings_ = -1;  // < 0: unlimited
    std::uint64_t jitter_ = 0;
    int seen_ = 0;     // matching phase occurrences observed
    int firings_ = 0;  // times the actions were armed
  };

  /// Starts a rule for `phase` (e.g. "is.iter", "ft.pass", "cg.iter").
  /// The returned reference stays valid for the campaign's lifetime.
  Rule& at_phase(std::string phase) {
    rules_.push_back(std::make_unique<Rule>());
    rules_.back()->phase_ = std::move(phase);
    return *rules_.back();
  }

  /// Progress callback: the workload reached `phase` once more.  Call it
  /// from exactly one rank's perspective per logical event (the NAS
  /// harness forwards rank 0's phase hook), otherwise one iteration fires
  /// the rules once per rank.  Matching rules arm their faults into the
  /// schedule relative to the operation counts observed right now.
  void on_phase(const std::string& phase) {
    for (auto& rp : rules_) {
      Rule& r = *rp;
      if (r.phase_ != phase) continue;
      const int idx = r.seen_++;
      if (idx < r.from_) continue;
      if ((idx - r.from_) % r.every_ != 0) continue;
      if (r.max_firings_ >= 0 && r.firings_ >= r.max_firings_) continue;
      ++r.firings_;
      for (const Rule::Action& a : r.actions_) fire(r, a);
    }
  }

  /// Scope string of rank R's WQE stream (the pmi node-naming convention).
  static std::string scope_of(int rank) {
    return "node" + std::to_string(rank);
  }

  FaultSchedule& schedule() noexcept { return schedule_; }
  const FaultSchedule& schedule() const noexcept { return schedule_; }
  Rng& rng() noexcept { return rng_; }
  /// Total faults armed into the schedule by fired rules.
  std::uint64_t armed() const noexcept { return armed_; }

 private:
  void fire(Rule& r, const Rule::Action& a) {
    const std::string scope = scope_of(a.rank);
    const std::uint64_t delta =
        a.delta + (r.jitter_ > 0 ? rng_.below(r.jitter_ + 1) : 0);
    switch (a.kind) {
      case Rule::Action::kKill:
        schedule_.kill(scope, schedule_.observed(scope) + delta, a.fatal);
        ++armed_;
        break;
      case Rule::Action::kCorrupt:
        schedule_.corrupt(scope, schedule_.observed(scope) + delta);
        ++armed_;
        break;
      case Rule::Action::kExhaustReg:
        arm_exhaust(scope + ".reg", delta, a.n);
        break;
      case Rule::Action::kExhaustCq:
        arm_exhaust(scope + ".cq", delta, a.n);
        break;
      case Rule::Action::kExhaustCredit:
        arm_exhaust(scope + ".credit", delta, a.n);
        break;
      case Rule::Action::kRailDown: {
        const std::string rs = FaultSchedule::rail_scope(scope, a.rail);
        schedule_.kill_from(rs, schedule_.observed(rs));
        ++armed_;
        break;
      }
      case Rule::Action::kDegrade: {
        const std::string ds =
            a.rail_scoped ? FaultSchedule::rail_scope(scope, a.rail) : scope;
        const std::uint64_t from = schedule_.observed(ds) + delta;
        schedule_.degrade(ds, from, from + a.n, a.spec);
        ++armed_;
        break;
      }
      case Rule::Action::kFlaky: {
        const std::string ds =
            a.rail_scoped ? FaultSchedule::rail_scope(scope, a.rail) : scope;
        const std::uint64_t from = schedule_.observed(ds) + delta;
        schedule_.flaky(ds, a.spec, a.period, a.duty, from, from + a.n);
        ++armed_;
        break;
      }
    }
  }

  void arm_exhaust(const std::string& scope, std::uint64_t delta,
                   std::uint64_t n) {
    schedule_.exhaust(scope, schedule_.observed(scope) + delta, n);
    armed_ += n;
  }

  FaultSchedule schedule_;
  Rng rng_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::uint64_t armed_ = 0;
};

}  // namespace sim
