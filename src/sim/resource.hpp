// Bandwidth-server resources.
//
// A BandwidthResource models a serial transfer engine with a fixed byte
// rate: a memory bus, a host-adapter link, a switch port.  Capacity is
// booked as time intervals on a calendar: a request books the earliest gap
// (no earlier than its data's arrival time) that fits its duration.  This
// gives FIFO service under load while letting a locally-generated request
// (e.g. a CPU copy) fill the gap in front of a DMA chunk that was booked
// ahead of time for data still on the wire.
//
// Large transfers should be submitted chunk-by-chunk (transfer() does this
// internally) so concurrent streams interleave at chunk granularity and
// each observes roughly half the rate -- a faithful first-order model of
// memory-bus sharing between a CPU copy and HCA DMA, which is the effect
// behind the paper's pipelining-vs-zero-copy gap.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sim {

class BandwidthResource {
 public:
  /// `rate_mbps` is in the paper's bandwidth unit (1 MB = 1e6 bytes).
  /// `chunk_bytes` is the interleaving granularity for transfer().
  BandwidthResource(Simulator& sim, std::string name, double rate_mbps,
                    std::int64_t chunk_bytes = 8192)
      : sim_(&sim),
        name_(std::move(name)),
        rate_mbps_(rate_mbps),
        chunk_bytes_(chunk_bytes) {}

  BandwidthResource(const BandwidthResource&) = delete;
  BandwidthResource& operator=(const BandwidthResource&) = delete;

  /// Books `bytes` of service starting as soon as possible; returns the
  /// absolute completion time.  The caller is responsible for awaiting
  /// until then (reserve + delay is the primitive; transfer() is the
  /// convenient composite).
  Tick reserve(std::int64_t bytes) { return reserve_from(sim_->now(), bytes); }

  /// Like reserve(), but service may not start before `earliest` (used when
  /// booking a downstream pipeline stage whose input arrives in the
  /// future).  Books the first gap that fits; requests arriving later may
  /// still fill earlier gaps.
  Tick reserve_from(Tick earliest, std::int64_t bytes) {
    return reserve_from(earliest, bytes, 1.0);
  }

  /// reserve_from() with a service-time multiplier, used by gray-failure
  /// degrades (bandwidth_mult 0.1 -> time_mult 10).  time_mult == 1.0 takes
  /// the exact same arithmetic path as the plain overload, so fault-free
  /// traces stay bit-identical.
  Tick reserve_from(Tick earliest, std::int64_t bytes, double time_mult) {
    const Tick now = sim_->now();
    prune(now);
    Tick dur = transfer_time(bytes, rate_mbps_);
    if (time_mult != 1.0) {
      dur = static_cast<Tick>(static_cast<double>(dur) * time_mult);
    }
    Tick start = earliest > now ? earliest : now;
    std::size_t pos = 0;
    for (; pos < busy_.size(); ++pos) {
      const auto& [bs, be] = busy_[pos];
      if (bs >= start + dur) break;  // fits entirely before this interval
      if (be > start) start = be;    // pushed past this busy interval
    }
    insert(pos, start, start + dur);
    total_bytes_ += bytes;
    busy_ticks_ += dur;
    return start + dur;
  }

  /// Occupies the resource for `bytes`, chunked so concurrent users
  /// interleave.  Completes when the last chunk has been served.
  Task<void> transfer(std::int64_t bytes) {
    while (bytes > 0) {
      const std::int64_t chunk = bytes < chunk_bytes_ ? bytes : chunk_bytes_;
      bytes -= chunk;
      co_await sim_->delay_until(reserve(chunk));
    }
  }

  /// End of the last booked interval (diagnostic; new requests may still
  /// start earlier, in a gap).
  Tick booked_until() const noexcept {
    return busy_.empty() ? sim_->now() : busy_.back().second;
  }

  double rate_mbps() const noexcept { return rate_mbps_; }
  std::int64_t chunk_bytes() const noexcept { return chunk_bytes_; }
  const std::string& name() const noexcept { return name_; }

  /// Lifetime statistics, used by benches to report link/bus utilization.
  std::int64_t total_bytes() const noexcept { return total_bytes_; }
  Tick busy_ticks() const noexcept { return busy_ticks_; }
  double utilization() const noexcept {
    return sim_->now() > 0
               ? static_cast<double>(busy_ticks_) /
                     static_cast<double>(sim_->now())
               : 0.0;
  }

 private:
  void prune(Tick now) {
    while (!busy_.empty() && busy_.front().second <= now) busy_.pop_front();
  }

  void insert(std::size_t pos, Tick s, Tick e) {
    // Coalesce with neighbours to keep the calendar short.
    if (pos > 0 && busy_[pos - 1].second == s) {
      busy_[pos - 1].second = e;
      if (pos < busy_.size() && busy_[pos].first == e) {
        busy_[pos - 1].second = busy_[pos].second;
        busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(pos));
      }
      return;
    }
    if (pos < busy_.size() && busy_[pos].first == e) {
      busy_[pos].first = s;
      return;
    }
    busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(pos), {s, e});
  }

  Simulator* sim_;
  std::string name_;
  double rate_mbps_;
  std::int64_t chunk_bytes_;
  std::deque<std::pair<Tick, Tick>> busy_;  // sorted, disjoint intervals
  std::int64_t total_bytes_ = 0;
  Tick busy_ticks_ = 0;
};

}  // namespace sim
