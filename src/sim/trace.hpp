// Protocol tracing.
//
// Subsystems emit structured trace records (who, what, how many bytes) so
// tests can assert protocol-level properties -- e.g. "the basic channel
// design issues exactly three RDMA writes per message" or "the zero-copy
// path performed no data memcpy" -- without coupling tests to timing.
// Tracing is a no-op unless a sink is attached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sim {

struct TraceRecord {
  Tick at = 0;
  std::string source;  // e.g. "hca0.qp2"
  std::string event;   // e.g. "rdma_write", "memcpy", "reg_mr"
  std::int64_t bytes = 0;
  std::int64_t arg = 0;  // event-specific (wr_id, rkey, chunk index, ...)
};

class TraceSink {
 public:
  void record(Tick at, std::string source, std::string event,
              std::int64_t bytes = 0, std::int64_t arg = 0) {
    records_.push_back(
        TraceRecord{at, std::move(source), std::move(event), bytes, arg});
  }

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() { records_.clear(); }

  std::size_t count(const std::string& event) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.event == event) ++n;
    }
    return n;
  }

  std::int64_t total_bytes(const std::string& event) const {
    std::int64_t n = 0;
    for (const auto& r : records_) {
      if (r.event == event) n += r.bytes;
    }
    return n;
  }

 private:
  std::vector<TraceRecord> records_;
};

/// Nullable tracing handle embedded in traced subsystems.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  void attach(TraceSink* sink) noexcept { sink_ = sink; }
  bool enabled() const noexcept { return sink_ != nullptr; }

  void record(Tick at, const std::string& source, const std::string& event,
              std::int64_t bytes = 0, std::int64_t arg = 0) const {
    if (sink_ != nullptr) sink_->record(at, source, event, bytes, arg);
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace sim
