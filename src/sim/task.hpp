// Lazy coroutine task type for simulator processes.
//
// Task<T> is the single coroutine vocabulary of the whole code base: every
// simulated activity that consumes virtual time -- an MPI rank, a channel
// progress loop, an HCA engine, a modelled memcpy -- is a Task.  Tasks are
// lazy: creating one does nothing; `co_await`-ing it starts it and resumes
// the awaiter when it finishes (symmetric transfer, so arbitrarily deep call
// chains use O(1) native stack).  Root processes are adopted by the
// Simulator via Simulator::spawn, which drives them as detached processes.
//
// Exceptions propagate through co_await exactly like ordinary calls; an
// exception escaping a detached root process aborts Simulator::run with a
// ProcessError.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace sim {

template <class T>
class Task;

namespace detail {

/// Final awaiter: hands control back to whoever co_awaited this task
/// (symmetric transfer), or to no one for a task that was never awaited.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

template <class T>
struct TaskPromise final : PromiseBase {
  std::optional<T> value{};

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> final : PromiseBase {
  Task<void> get_return_object();
  void return_void() const noexcept {}
};

}  // namespace detail

/// A lazily-started coroutine producing a T.  Move-only; owns its frame.
template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return !h_ || h_.done(); }

  /// Awaiting a task starts it immediately (symmetric transfer into the
  /// task's frame) and resumes the awaiter when the task completes.
  auto operator co_await() & noexcept { return Awaiter{h_}; }
  auto operator co_await() && noexcept { return Awaiter{h_}; }

  /// Releases ownership of the coroutine handle (used by the Simulator when
  /// adopting root processes).
  Handle release() noexcept { return std::exchange(h_, {}); }

 private:
  struct Awaiter {
    Handle h;

    bool await_ready() const noexcept { return !h || h.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> cont) const noexcept {
      h.promise().continuation = cont;
      return h;  // start the child task now
    }
    T await_resume() const {
      if (h && h.promise().error) {
        std::rethrow_exception(h.promise().error);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(*h.promise().value);
      }
    }
  };

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  Handle h_{};
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>{
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace sim
