// Synchronization primitives for simulated processes.
//
// All primitives are edge- or level-triggered wakeup devices built on the
// Simulator's event queue.  None of them is thread-safe -- the simulation is
// single-threaded by construction -- and all wakeups are deterministic:
// waiters resume in wait order, at the virtual instant of the notify.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace sim {

/// Edge-triggered broadcast event: fire() wakes every process currently
/// blocked in wait().  A wait() that begins after a fire() blocks until the
/// next fire() -- i.e. notifications are not latched.  Use Gate for latched
/// semantics, or the wait_until() helper to close check-then-wait races.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(&sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wakes all current waiters at the current virtual time.
  void fire() {
    ++fires_;
    for (auto h : waiters_) sim_->schedule(sim_->now(), h);
    waiters_.clear();
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }
  std::uint64_t fire_count() const noexcept { return fires_; }
  Simulator& simulator() const noexcept { return *sim_; }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::uint64_t fires_ = 0;
};

/// Blocks until pred() is true, re-testing after every fire of `t`.
/// This is the standard condition-variable-with-predicate idiom; it is
/// immune to the lost-wakeup race because the predicate is tested before
/// the first wait.
template <class Pred>
Task<void> wait_until(Trigger& t, Pred pred) {
  while (!pred()) {
    co_await t.wait();
  }
}

/// Level-triggered latch: once open()ed, all current and future waits
/// complete immediately.
class Gate {
 public:
  explicit Gate(Simulator& sim) : sim_(&sim) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  auto wait() {
    struct Awaiter {
      Gate& g;
      bool await_ready() const noexcept { return g.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        g.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) sim_->schedule(sim_->now(), h);
    waiters_.clear();
  }

  bool is_open() const noexcept { return open_; }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool open_ = false;
};

/// Counting semaphore (FIFO grant order).
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial)
      : trigger_(sim), count_(initial) {}

  Task<void> acquire(std::int64_t n = 1) {
    co_await wait_until(trigger_, [this, n] { return count_ >= n; });
    count_ -= n;
    // Leftover permits may satisfy another waiter with a smaller demand.
    if (count_ > 0) trigger_.fire();
  }

  void release(std::int64_t n = 1) {
    count_ += n;
    trigger_.fire();
  }

  std::int64_t available() const noexcept { return count_; }

 private:
  Trigger trigger_;
  std::int64_t count_;
};

/// Unbounded FIFO mailbox of T: the workhorse for work queues and packet
/// queues.  pop() blocks until an item is available.
template <class T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : trigger_(sim) {}

  void push(T item) {
    items_.push_back(std::move(item));
    trigger_.fire();
  }

  Task<T> pop() {
    co_await wait_until(trigger_, [this] { return !items_.empty(); });
    T item = std::move(items_.front());
    items_.pop_front();
    // Another waiter may still have items to consume.
    if (!items_.empty()) trigger_.fire();
    co_return item;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

 private:
  Trigger trigger_;
  std::deque<T> items_;
};

}  // namespace sim
