// Virtual-time units for the discrete-event simulator.
//
// All simulated time is kept in integer picoseconds.  Picosecond resolution
// keeps rounding error negligible even for single-byte transfers at GB/s
// rates (1 byte at 1 GB/s is exactly 1000 ticks), while int64 still covers
// ~106 days of simulated time -- far beyond any benchmark in this repo.
#pragma once

#include <cmath>
#include <cstdint>

namespace sim {

/// One tick is one picosecond of virtual time.
using Tick = std::int64_t;

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1'000;
inline constexpr Tick kMicrosecond = 1'000'000;
inline constexpr Tick kMillisecond = 1'000'000'000;
inline constexpr Tick kSecond = 1'000'000'000'000;

/// Converts fractional microseconds (the natural unit of the paper's
/// latency numbers) to ticks, rounding to the nearest picosecond.
constexpr Tick usec(double us) {
  return static_cast<Tick>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/// Converts fractional nanoseconds to ticks.
constexpr Tick nsec(double ns) {
  return static_cast<Tick>(ns * static_cast<double>(kNanosecond) + 0.5);
}

/// Converts ticks to fractional microseconds (for reporting).
constexpr double to_usec(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Converts ticks to fractional seconds (for reporting).
constexpr double to_sec(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Serialization time of `bytes` at a rate given in the paper's bandwidth
/// unit (MB/s, where 1 MB = 1e6 bytes).  Rounds up so that a transfer is
/// never free.
constexpr Tick transfer_time(std::int64_t bytes, double megabytes_per_sec) {
  if (bytes <= 0) return 0;
  const double seconds =
      static_cast<double>(bytes) / (megabytes_per_sec * 1e6);
  const Tick ticks =
      static_cast<Tick>(seconds * static_cast<double>(kSecond) + 0.5);
  return ticks > 0 ? ticks : 1;
}

/// Inverse of transfer_time: achieved bandwidth in MB/s (1 MB = 1e6 B).
constexpr double bandwidth_mbps(std::int64_t bytes, Tick elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / to_sec(elapsed) / 1e6;
}

}  // namespace sim
