#include "sim/simulator.hpp"

#include <exception>

namespace sim {

/// Root coroutine wrapper: runs a Task<void> to completion and notifies the
/// owning Simulator's ProcessState.  Stays suspended at final_suspend so the
/// Simulator controls frame destruction.
struct Simulator::RootTask {
  struct promise_type {
    ProcessState* st = nullptr;

    RootTask get_return_object() {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }

    struct Final {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        ProcessState* st = h.promise().st;
        st->finished = true;
        if (st->error && st->sim->failed_ == nullptr) st->sim->failed_ = st;
      }
      void await_resume() const noexcept {}
    };
    Final final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() { st->error = std::current_exception(); }
  };

  std::coroutine_handle<promise_type> h;
};

Simulator::RootTask Simulator::root_runner(Task<void> inner) {
  co_await std::move(inner);
}

Simulator::~Simulator() {
  // Destroy suspended root frames; child frames are destroyed transitively
  // through the Task<> members living in their parents' frames.
  for (auto& p : processes_) {
    if (p->root) p->root.destroy();
  }
}

void Simulator::schedule(Tick at, std::coroutine_handle<> h) {
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, h, nullptr});
}

void Simulator::call_at(Tick at, std::function<void()> fn) {
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, nullptr, std::move(fn)});
}

void Simulator::adopt(Task<void> proc, std::string name, bool daemon) {
  auto st = std::make_unique<ProcessState>();
  st->sim = this;
  st->name = std::move(name);
  st->daemon = daemon;
  RootTask root = root_runner(std::move(proc));
  root.h.promise().st = st.get();
  st->root = root.h;
  schedule(now_, root.h);
  processes_.push_back(std::move(st));
}

void Simulator::spawn(Task<void> proc, std::string name) {
  adopt(std::move(proc), std::move(name), /*daemon=*/false);
}

void Simulator::spawn_daemon(Task<void> proc, std::string name) {
  adopt(std::move(proc), std::move(name), /*daemon=*/true);
}

std::size_t Simulator::live_root_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->daemon && !p->finished) ++n;
  }
  return n;
}

void Simulator::drain(Tick limit, bool bounded) {
  while (!queue_.empty()) {
    if (bounded && queue_.top().at > limit) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_processed_;
    if (ev.h) {
      ev.h.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    if (failed_ != nullptr) break;
  }
  if (bounded && now_ < limit) now_ = limit;
}

void Simulator::run() {
  drain(0, /*bounded=*/false);
  if (failed_ != nullptr) {
    ProcessState* f = failed_;
    failed_ = nullptr;
    try {
      std::rethrow_exception(f->error);
    } catch (const std::exception& e) {
      f->error = nullptr;
      throw ProcessError(f->name, e.what());
    } catch (...) {
      f->error = nullptr;
      throw ProcessError(f->name, "unknown exception");
    }
  }
  if (std::size_t live = live_root_processes(); live != 0) {
    std::string who;
    for (const auto& p : processes_) {
      if (!p->daemon && !p->finished) {
        if (!who.empty()) who += ", ";
        who += p->name;
      }
    }
    throw DeadlockError("event queue drained with " + std::to_string(live) +
                        " blocked process(es): " + who);
  }
}

Tick Simulator::run_until(Tick t) {
  drain(t, /*bounded=*/true);
  return now_;
}

}  // namespace sim
