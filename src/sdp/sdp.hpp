// A sockets-style stream layer over the RDMA Channel -- the related-work
// bridge of paper section 8: "The RDMA Channel interface presents a
// stream-based abstraction somewhat similar to the traditional socket
// interface ... Recently, Socket Direct Protocol (SDP) has been proposed,
// which provides a socket interface over InfiniBand.  The idea of our
// zero-copy scheme is similar to the Z-Copy scheme in SDP."
//
// This module demonstrates that claim constructively: a blocking
// send/recv stream API (the part of sockets the paper contrasts with the
// nonblocking put/get) implemented directly on any channel design.  recv
// has socket semantics -- it returns as soon as at least one byte is
// available -- and large sends ride the channel's zero-copy path
// untouched, which is precisely SDP's Z-Copy.
#pragma once

#include <memory>

#include "rdmach/channel.hpp"

namespace sdp {

/// One blocking byte stream to a peer rank.  Streams to different peers
/// are independent; a stream must be used by its owning rank only.
class Stream {
 public:
  Stream(rdmach::Channel& ch, int peer)
      : ch_(&ch), conn_(&ch.connection(peer)), peer_(peer) {}

  /// Blocking send of the full buffer (traditional socket write loop).
  sim::Task<void> send(const void* buf, std::size_t len);

  /// Socket-style recv: blocks until at least one byte is available, then
  /// returns what is there (up to len).  Returns 0 only for len == 0.
  sim::Task<std::size_t> recv(void* buf, std::size_t len);

  /// Blocking receive of exactly `len` bytes (the common framing helper).
  sim::Task<void> recv_exact(void* buf, std::size_t len);

  int peer() const noexcept { return peer_; }

 private:
  rdmach::Channel* ch_;
  rdmach::Connection* conn_;
  int peer_;
};

/// Per-rank endpoint: one Stream per peer over a shared channel.
class Endpoint {
 public:
  /// Builds (and initializes) an endpoint on the given channel design.
  static sim::Task<std::unique_ptr<Endpoint>> create(
      pmi::Context& ctx, const rdmach::ChannelConfig& cfg);

  sim::Task<void> close();

  Stream& stream(int peer);

  int rank() const noexcept { return ch_->rank(); }
  int size() const noexcept { return ch_->size(); }
  rdmach::Channel& channel() noexcept { return *ch_; }

 private:
  explicit Endpoint(std::unique_ptr<rdmach::Channel> ch)
      : ch_(std::move(ch)) {}

  std::unique_ptr<rdmach::Channel> ch_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace sdp
