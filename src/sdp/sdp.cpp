#include "sdp/sdp.hpp"

namespace sdp {

sim::Task<void> Stream::send(const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const std::uint64_t gen = ch_->activity_count();
    const std::size_t k = co_await ch_->put(*conn_, p + done, len - done);
    done += k;
    if (done < len && k == 0 && ch_->activity_count() == gen) {
      co_await ch_->wait_for_activity();
    }
  }
}

sim::Task<std::size_t> Stream::recv(void* buf, std::size_t len) {
  if (len == 0) co_return 0;
  auto* p = static_cast<std::byte*>(buf);
  for (;;) {
    const std::uint64_t gen = ch_->activity_count();
    const std::size_t k = co_await ch_->get(*conn_, p, len);
    if (k > 0) co_return k;
    if (ch_->activity_count() == gen) co_await ch_->wait_for_activity();
  }
}

sim::Task<void> Stream::recv_exact(void* buf, std::size_t len) {
  auto* p = static_cast<std::byte*>(buf);
  std::size_t done = 0;
  while (done < len) {
    done += co_await recv(p + done, len - done);
  }
}

sim::Task<std::unique_ptr<Endpoint>> Endpoint::create(
    pmi::Context& ctx, const rdmach::ChannelConfig& cfg) {
  auto ep =
      std::unique_ptr<Endpoint>(new Endpoint(rdmach::Channel::create(ctx, cfg)));
  co_await ep->ch_->init();
  ep->streams_.resize(static_cast<std::size_t>(ep->ch_->size()));
  for (int p = 0; p < ep->ch_->size(); ++p) {
    if (p == ep->ch_->rank()) continue;
    ep->streams_[static_cast<std::size_t>(p)] =
        std::make_unique<Stream>(*ep->ch_, p);
  }
  co_return ep;
}

sim::Task<void> Endpoint::close() { co_await ch_->finalize(); }

Stream& Endpoint::stream(int peer) {
  auto& s = streams_.at(static_cast<std::size_t>(peer));
  if (!s) throw std::logic_error("no stream to self");
  return *s;
}

}  // namespace sdp
