// Simulated process-management interface.
//
// Real MPICH2 jobs bootstrap through a process manager (mpd) and its PMI
// key-value space: every rank publishes its QP numbers / buffer addresses /
// rkeys, synchronizes, and reads its peers' entries.  This module provides
// the same three primitives -- put, barrier-then-get, and a launcher that
// starts one process per node -- against the simulated cluster.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ib/fabric.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pmi {

/// Job-wide key-value space.  get() blocks until the key has been
/// published, so `put(...); co_await get(peer_key)` is a safe exchange
/// without an explicit barrier.
class Kvs {
 public:
  explicit Kvs(sim::Simulator& sim) : published_(sim) {}

  void put(const std::string& key, std::string value) {
    entries_[key] = std::move(value);
    published_.fire();
  }

  /// Convenience for numeric values (addresses, rkeys, QP numbers).
  void put_u64(const std::string& key, std::uint64_t v) {
    put(key, std::to_string(v));
  }

  sim::Task<std::string> get(std::string key) {
    co_await sim::wait_until(published_,
                             [this, &key] { return entries_.count(key) > 0; });
    co_return entries_.at(key);
  }

  sim::Task<std::uint64_t> get_u64(std::string key) {
    std::string v = co_await get(std::move(key));
    co_return std::stoull(v);
  }

  /// Blocks until `key` is published (returns its value) or `abort_key`
  /// appears first (returns nullopt).  Recovery handshakes use this so a
  /// rank waiting for its peer's half of an exchange is released when the
  /// peer instead publishes a failure marker.
  sim::Task<std::optional<std::string>> get_unless(std::string key,
                                                   std::string abort_key) {
    co_await sim::wait_until(published_, [this, &key, &abort_key] {
      return entries_.count(key) > 0 || entries_.count(abort_key) > 0;
    });
    auto it = entries_.find(key);
    if (it == entries_.end()) co_return std::nullopt;
    co_return it->second;
  }

  /// get_unless with a virtual-time deadline: additionally returns (with
  /// nullopt) once `deadline` passes with neither key published.  The
  /// channel recovery watchdog bounds its handshake waits with this --
  /// disambiguate timeout from abort by probing has(abort_key) afterwards.
  /// `deadline` must be in the future.
  sim::Task<std::optional<std::string>> get_unless_before(
      std::string key, std::string abort_key, sim::Tick deadline) {
    sim::Simulator& sim = published_.simulator();
    // The trigger only re-evaluates predicates when fired; fire it at the
    // deadline so the time clause below is actually observed.
    sim.call_at(deadline, [this] { published_.fire(); });
    co_await sim::wait_until(published_, [this, &key, &abort_key, deadline,
                                          &sim] {
      return entries_.count(key) > 0 || entries_.count(abort_key) > 0 ||
             sim.now() >= deadline;
    });
    auto it = entries_.find(key);
    if (it == entries_.end()) co_return std::nullopt;
    co_return it->second;
  }

  /// Non-blocking probe (PMI_KVS_Get with an immediate-failure return):
  /// recovery paths use it to check for a peer's "dead" marker without
  /// committing to wait for it.
  bool has(const std::string& key) const { return entries_.count(key) > 0; }

  /// Non-blocking lookup: the value if published, nullptr otherwise.  Lazy
  /// connection joins read a whole key family synchronously (no suspension
  /// between reads) once the family's last-published sentinel key appears.
  const std::string* find(const std::string& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Append-only mailbox: values accumulate per key in publish order and
  /// are never overwritten.  Lazy connection establishment uses one mailbox
  /// per rank ("lzm:<rank>") for connect/evict requests; consumers keep a
  /// cursor into the list.  Fires the same trigger as put().
  void append(const std::string& key, std::string value) {
    mailboxes_[key].push_back(std::move(value));
    published_.fire();
  }

  /// The mailbox list for `key` (possibly empty).  The reference is stable
  /// across further append() calls.
  const std::vector<std::string>& mail(const std::string& key) {
    return mailboxes_[key];
  }

  /// Entries in `key`'s mailbox without materializing it (const-safe): a
  /// cheap monotone version for consumers that only need "did it move".
  std::size_t mail_count(const std::string& key) const {
    auto it = mailboxes_.find(key);
    return it == mailboxes_.end() ? 0 : it->second.size();
  }

  std::size_t size() const noexcept { return entries_.size(); }

  /// Obituary board.  A rank that convicts a peer as permanently dead posts
  /// an obituary here; every other rank consults the board before burning
  /// its own retry budget against the corpse.  post_obit is idempotent (the
  /// first conviction wins) and mirrors the obituary into the regular KVS as
  /// "ft:dead:<rank>" so key-based waiters (get_unless family) can use it as
  /// an abort key.  obit_version() is a cheap monotonic cursor: consumers
  /// cache it and rescan the board only when it moves.
  bool post_obit(int rank) {
    if (!dead_ranks_.insert(rank).second) return false;
    obit_list_.push_back(rank);
    put("ft:dead:" + std::to_string(rank), "1");
    return true;
  }

  bool is_dead(int rank) const { return dead_ranks_.count(rank) > 0; }

  /// Ranks obituaried so far, in conviction order.  Stable reference.
  const std::vector<int>& obits() const noexcept { return obit_list_; }

  std::uint64_t obit_version() const noexcept { return obit_list_.size(); }

 private:
  std::map<std::string, std::string> entries_;
  std::map<std::string, std::vector<std::string>> mailboxes_;
  std::set<int> dead_ranks_;
  std::vector<int> obit_list_;
  sim::Trigger published_;
};

/// Job-wide barrier (PMI_Barrier): generation-counted so it is reusable.
class Barrier {
 public:
  Barrier(sim::Simulator& sim, int participants)
      : released_(sim), participants_(participants) {}

  sim::Task<void> arrive() {
    const std::uint64_t token = arrive_split();
    co_await sim::wait_until(released_,
                             [this, token] { return done(token); });
  }

  /// Split-phase arrival: registers this rank now and returns a token for
  /// done().  Lets a rank keep servicing out-of-band work (e.g. connection
  /// recovery handshakes during channel finalize) while slower ranks catch
  /// up, instead of going deaf inside a blocking arrive().
  std::uint64_t arrive_split() {
    const std::uint64_t my_gen = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      released_.fire();
    }
    return my_gen;
  }

  bool done(std::uint64_t token) const noexcept { return generation_ > token; }

  /// Removes a permanently dead rank from the participant set: a corpse can
  /// never arrive, so leaving it counted wedges every subsequent job-wide
  /// barrier (finalize).  Idempotent per rank -- any number of survivors may
  /// report the same obituary.  If the remaining participants have all
  /// already arrived, the barrier releases immediately.
  void abandon(int rank) {
    if (!abandoned_.insert(rank).second) return;
    --participants_;
    if (participants_ > 0 && arrived_ >= participants_) {
      arrived_ = 0;
      ++generation_;
      released_.fire();
    }
  }

 private:
  sim::Trigger released_;
  int participants_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::set<int> abandoned_;
};

/// Per-rank execution context handed to every rank program.
struct Context {
  int rank = 0;
  int size = 0;
  /// Job layout: consecutive ranks per node, so peer rank r lives on fabric
  /// node r / ranks_per_node (lazy connects wake that node's progress loop
  /// without a QP in hand).
  int ranks_per_node = 1;
  ib::Node* node = nullptr;
  Kvs* kvs = nullptr;
  Barrier* barrier = nullptr;

  sim::Simulator& sim() const { return node->fabric().sim(); }
  ib::Fabric& fabric() const { return node->fabric(); }
};

/// Fires every fabric node's DMA-arrival trigger one wire latency from now.
/// Progress loops park on those triggers (not on the KVS), so a control-plane
/// event that must interrupt blocked ranks everywhere -- an obituary posting,
/// a communicator revocation -- follows its KVS write with this broadcast
/// wake-up.  Idempotent and cheap: woken ranks that find nothing to do just
/// park again.
inline void wake_all_ranks(Context& ctx) {
  sim::Simulator& sim = ctx.sim();
  ib::Fabric& fabric = ctx.fabric();
  const sim::Tick at = sim.now() + fabric.cfg().wire_latency;
  for (std::size_t i = 0; i < fabric.node_count(); ++i) {
    ib::Node* n = &fabric.node(i);
    sim.call_at(at, [n] { n->dma_arrival().fire(); });
  }
}

/// Launches an `n`-rank job on the fabric: adds one node per rank (if the
/// fabric does not already have enough), builds the contexts, and spawns
/// `main` once per rank.  Call sim.run() afterwards.
class Job {
 public:
  using RankMain = std::function<sim::Task<void>(Context&)>;

  /// `ranks_per_node` > 1 co-locates consecutive ranks on one node (SMP
  /// cluster), which the multi-method channel exploits: shared memory
  /// within a node, InfiniBand across nodes.
  explicit Job(ib::Fabric& fabric, int n, int ranks_per_node = 1);

  /// Spawns `main(ctx)` for every rank.  The callable is kept alive for the
  /// job's lifetime: if it is a coroutine lambda, its closure must outlive
  /// the spawned coroutines.
  void launch(RankMain main);

  Context& context(int rank) { return contexts_.at(static_cast<std::size_t>(rank)); }
  Kvs& kvs() noexcept { return kvs_; }
  int size() const noexcept { return n_; }

 private:
  ib::Fabric* fabric_;
  int n_;
  Kvs kvs_;
  Barrier barrier_;
  std::vector<Context> contexts_;
  // Keeps coroutine-lambda closures alive; deque: stable addresses across
  // repeated launches.
  std::deque<RankMain> mains_;
};

}  // namespace pmi
