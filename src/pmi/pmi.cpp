#include "pmi/pmi.hpp"

namespace pmi {

Job::Job(ib::Fabric& fabric, int n, int ranks_per_node)
    : fabric_(&fabric), n_(n), kvs_(fabric.sim()), barrier_(fabric.sim(), n) {
  const int nodes = (n + ranks_per_node - 1) / ranks_per_node;
  while (fabric_->node_count() < static_cast<std::size_t>(nodes)) {
    fabric_->add_node();
  }
  contexts_.reserve(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    contexts_.push_back(
        Context{r, n_, ranks_per_node,
                &fabric_->node(static_cast<std::size_t>(r / ranks_per_node)),
                &kvs_, &barrier_});
  }
}

void Job::launch(RankMain main) {
  mains_.push_back(std::move(main));
  const RankMain& m = mains_.back();
  for (int r = 0; r < n_; ++r) {
    fabric_->sim().spawn(m(contexts_[static_cast<std::size_t>(r)]),
                         "rank" + std::to_string(r));
  }
}

}  // namespace pmi
