// Reliable-connection queue pairs.
//
// A queue pair consists of a send queue and a receive queue; communication
// operations are described in work queue requests (descriptors) submitted
// to the work queue, and completion is reported through completion queues
// (paper section 2).  This implementation provides the RC service: in-order
// processing of send-queue WQEs per QP, RDMA write/read with rkey
// validation against the target's protection domain, and channel-semantics
// send/receive.
//
// Engine structure (all virtual-time, spawned when connect() is called):
//   * send_engine      -- drains the send queue in order; per WQE charges
//                         wqe_overhead, validates, snapshots source data
//                         (HW reads at DMA time; we read at post for
//                         determinism), then books the staged data path
//                         src-bus -> tx-link -> wire -> rx-link -> dst-bus
//                         chunk by chunk.  The engine moves to the next WQE
//                         as soon as the source-side stages are booked, so
//                         consecutive WQEs pipeline on the wire exactly as
//                         the paper's pipelining optimization requires.
//   * responder_engine -- serves incoming RDMA-read requests (turnaround
//                         overhead, then streams data back through this
//                         side's tx link, contending with its own sends --
//                         the cause of the read-vs-write gap in Fig. 15).
//
// A protection failure completes the WQE with an error status and moves the
// QP to the error state; subsequently posted WQEs complete with
// kFlushError *in post order*, mirroring RC error semantics.  close() moves
// the QP to the error state administratively (connection teardown);
// quiesce() then awaits local drain (no WQE mid-processing, no outbound
// delivery in flight, no outstanding read) so a recovery layer can replay
// state onto a fresh QP without stale DMA overtaking it; reset() returns a
// drained error-state QP to service (the modify_qp ERR->RESET->...->RTS
// path).  A deterministic sim::FaultSchedule attached to the fabric can
// kill specific WQEs: the victim completes with kTransportError after the
// full modelled retry storm and (for fatal faults) the QP enters the error
// state, exactly like real RC retry exhaustion.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "ib/types.hpp"
#include "sim/fault.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ib {

class Hca;
class Fabric;
class Node;
class Port;

class QueuePair {
 public:
  QueuePair(Hca& hca, ProtectionDomain& pd, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, std::uint32_t qp_num, Port& port);
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Establishes the reliable connection between this QP and `peer`
  /// (both directions) and starts the processing engines.  Call once.
  void connect(QueuePair& peer);

  /// Blocks until connect() has been called (on either side).  Recovery
  /// re-handshakes use this on the rank that does not own the connect call.
  sim::Task<void> wait_connected();

  /// wait_connected bounded by a virtual-time deadline (must be in the
  /// future); returns whether the connection was established in time.  The
  /// recovery watchdog uses this so a connect that never comes -- the peer
  /// wedged or dead mid-handshake -- cannot park the waiter forever.
  sim::Task<bool> wait_connected_until(sim::Tick deadline);

  /// Administratively moves the QP to the error state (connection
  /// teardown): subsequently posted WQEs flush; WQEs already being
  /// processed finish or error on their own.
  void close() { enter_error(); }

  /// Awaits local quiescence: no WQE mid-processing, send queue empty, all
  /// outbound deliveries landed, no outstanding reads.  After close() +
  /// quiesce(), nothing from this QP can touch peer memory later -- the
  /// precondition for replaying ring state onto a replacement QP.
  sim::Task<void> quiesce();

  /// Returns a drained error-state QP to service, keeping the peer binding
  /// (models modify_qp ERR->RESET->INIT->RTR->RTS on both ends).  Throws
  /// VerbsError unless the QP is locally quiescent.
  void reset();

  /// Posts a send-queue descriptor (send / RDMA write / RDMA read).
  /// Non-blocking and free of virtual time, like ringing a doorbell.
  void post_send(SendWr wr);

  /// Posts a receive descriptor for channel-semantics sends.
  void post_recv(RecvWr wr);

  std::uint32_t qp_num() const noexcept { return qp_num_; }
  bool connected() const noexcept { return peer_ != nullptr; }
  bool in_error() const noexcept { return error_; }
  Hca& hca() const noexcept { return *hca_; }
  /// The rail this QP's traffic rides (set at create_qp, immutable).
  Port& port() const noexcept { return *port_; }
  Node& node() const;
  ProtectionDomain& pd() const noexcept { return *pd_; }
  CompletionQueue& send_cq() const noexcept { return *send_cq_; }
  CompletionQueue& recv_cq() const noexcept { return *recv_cq_; }
  QueuePair* peer() const noexcept { return peer_; }
  std::size_t send_queue_depth() const noexcept { return sq_->size(); }

 private:
  friend class Fabric;

  /// Responder-side work: an RDMA read or a 64-bit atomic.
  struct ReadRequest {
    Opcode op = Opcode::kRdmaRead;
    std::uint64_t remote_addr = 0;  // address in *this* (responder) memory
    std::uint32_t rkey = 0;
    std::vector<Sge> dest_sgl;      // initiator-side destination
    std::uint64_t wr_id = 0;
    bool signaled = true;
    std::uint64_t atomic_arg = 0;
    std::uint64_t atomic_swap = 0;
    /// Injected fault: flip a payload bit in the read response.
    bool corrupt = false;
    /// Gray-failure degrade composed at the initiator; the responder books
    /// the reply leg with it too (a degraded path is slow both ways).
    sim::FaultSchedule::DegradeSpec deg{};
  };

  struct InboundSend {
    /// Pooled staging buffer (sim::BufferPool): releasing the last
    /// reference returns the storage to the simulator's free list.
    std::shared_ptr<std::vector<std::byte>> data;
  };

  sim::Task<void> send_engine();
  /// One send-queue WQE, in order (factored out of send_engine so the
  /// engine can maintain the busy_ flag across every early exit).
  sim::Task<void> process_wqe(SendWr wr);
  sim::Task<void> responder_engine();

  void complete(CompletionQueue& cq, const Wc& wc, sim::Tick at);
  void complete_now(CompletionQueue& cq, const Wc& wc);
  /// Single point where a CQE reaches its CQ: consults the fault schedule's
  /// "<node>.cq" scope so an injected overrun can drop it.
  void deliver_wc(CompletionQueue& cq, const Wc& wc);
  void read_done();
  bool validate_local(const std::vector<Sge>& sgl, std::uint32_t need_access,
                      std::uint64_t wr_id, Opcode op);
  void enter_error();
  void deliver_send(InboundSend inbound);
  void match_recv();

  Hca* hca_;
  Port* port_;
  ProtectionDomain* pd_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  std::uint32_t qp_num_;
  QueuePair* peer_ = nullptr;
  bool error_ = false;

  std::unique_ptr<sim::Mailbox<SendWr>> sq_;
  std::unique_ptr<sim::Mailbox<ReadRequest>> responder_q_;
  std::unique_ptr<sim::Trigger> read_credit_;
  std::unique_ptr<sim::Trigger> quiesce_;    // fired whenever work drains
  std::unique_ptr<sim::Trigger> connected_;  // fired by connect()
  bool busy_ = false;             // send engine is mid-WQE
  int inflight_deliveries_ = 0;   // outbound DMA placements not yet landed
  int reads_in_flight_ = 0;
  std::deque<RecvWr> rq_;
  std::deque<InboundSend> unclaimed_;  // arrived sends awaiting a recv WQE
};

}  // namespace ib
