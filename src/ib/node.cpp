#include "ib/node.hpp"

#include "ib/fabric.hpp"
#include "ib/hca.hpp"

namespace ib {

Node::Node(Fabric& fabric, int id, std::string name)
    : fabric_(&fabric),
      id_(id),
      name_(std::move(name)),
      bus_(fabric.sim(), name_ + ".bus", fabric.cfg().bus_mbps,
           fabric.cfg().bus_chunk_bytes),
      dma_arrival_(fabric.sim()) {
  const int n = fabric.cfg().num_hcas > 0 ? fabric.cfg().num_hcas : 1;
  for (int i = 0; i < n; ++i) {
    hcas_.push_back(std::make_unique<Hca>(*this, i));
  }
}

Node::~Node() = default;

int Node::num_rails() const noexcept {
  int n = 0;
  for (const auto& h : hcas_) n += h->port_count();
  return n;
}

Port& Node::rail(int r) const {
  const int per = hcas_[0]->port_count();
  return hca(r / per).port(r % per);
}

sim::Task<void> Node::copy(void* dst, const void* src, std::size_t n,
                           std::size_t working_set) {
  if (n == 0) co_return;
  const FabricConfig& cfg = fabric_->cfg();
  const double factor = cfg.copy_factor(static_cast<std::int64_t>(
      working_set != 0 ? working_set : n));
  const auto bus_bytes =
      static_cast<std::int64_t>(static_cast<double>(n) * factor);
  co_await bus_.transfer(bus_bytes);
  std::memcpy(dst, src, n);
  copied_bytes_ += static_cast<std::int64_t>(n);
  fabric_->tracer().record(fabric_->sim().now(), name_, "memcpy",
                           static_cast<std::int64_t>(n));
}

sim::Task<void> Node::compute(sim::Tick t) {
  co_await fabric_->sim().delay(t);
}

}  // namespace ib
