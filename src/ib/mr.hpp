// Protection domains and memory regions.
//
// InfiniBand requires every communication buffer to be registered; the
// registration pins the pages and yields a local key (lkey, used in SGEs)
// and a remote key (rkey, presented by RDMA initiators and validated by the
// target HCA).  Registration and deregistration are modelled as expensive
// CPU-side operations (FabricConfig::reg_cost), which is exactly what makes
// the paper's registration cache worthwhile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ib/types.hpp"
#include "sim/task.hpp"

namespace ib {

class Hca;
class ProtectionDomain;

class MemoryRegion {
 public:
  MemoryRegion(ProtectionDomain& pd, std::byte* addr, std::size_t length,
               std::uint32_t access, std::uint32_t lkey, std::uint32_t rkey)
      : pd_(&pd),
        addr_(addr),
        length_(length),
        access_(access),
        lkey_(lkey),
        rkey_(rkey) {}

  std::byte* addr() const noexcept { return addr_; }
  std::size_t length() const noexcept { return length_; }
  std::uint32_t access() const noexcept { return access_; }
  std::uint32_t lkey() const noexcept { return lkey_; }
  std::uint32_t rkey() const noexcept { return rkey_; }
  ProtectionDomain& pd() const noexcept { return *pd_; }
  bool valid() const noexcept { return valid_; }

  bool contains(const std::byte* p, std::size_t n) const noexcept {
    return valid_ && p >= addr_ && p + n <= addr_ + length_;
  }
  bool contains(std::uint64_t va, std::size_t n) const noexcept {
    return contains(reinterpret_cast<const std::byte*>(va), n);
  }

 private:
  friend class ProtectionDomain;
  ProtectionDomain* pd_;
  std::byte* addr_;
  std::size_t length_;
  std::uint32_t access_;
  std::uint32_t lkey_;
  std::uint32_t rkey_;
  bool valid_ = true;
};

class ProtectionDomain {
 public:
  explicit ProtectionDomain(Hca& hca, std::uint32_t id)
      : hca_(&hca), id_(id) {}
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  /// Registers [addr, addr+length) with the given access rights.  Charges
  /// the calling process the modelled registration cost.
  sim::Task<MemoryRegion*> register_memory(void* addr, std::size_t length,
                                           std::uint32_t access = kAllAccess);

  /// Deregisters a region; charges the modelled cost and invalidates the
  /// keys (in-flight operations that already validated are unaffected,
  /// matching the hardware's behaviour of using the pinned translation).
  sim::Task<void> deregister(MemoryRegion* mr);

  /// Validates an SGE against this PD (lkey exists, covers the range, and
  /// grants local access).
  bool check_sge(const Sge& sge) const;

  /// rkey lookup for incoming RDMA validation.
  const MemoryRegion* find_rkey(std::uint32_t rkey) const {
    auto it = by_rkey_.find(rkey);
    return it == by_rkey_.end() ? nullptr : it->second;
  }

  Hca& hca() const noexcept { return *hca_; }
  std::uint32_t id() const noexcept { return id_; }
  std::size_t region_count() const noexcept { return by_rkey_.size(); }
  std::int64_t registered_bytes() const noexcept { return registered_bytes_; }

 private:
  Hca* hca_;
  std::uint32_t id_;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_rkey_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_lkey_;
  std::int64_t registered_bytes_ = 0;
};

}  // namespace ib
