#include "ib/mr.hpp"

#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/node.hpp"

namespace ib {

sim::Task<MemoryRegion*> ProtectionDomain::register_memory(
    void* addr, std::size_t length, std::uint32_t access) {
  if (addr == nullptr || length == 0) {
    throw VerbsError("register_memory: empty region");
  }
  Fabric& fabric = hca_->fabric();
  if (sim::FaultSchedule* faults = fabric.faults(); faults != nullptr) {
    // Scope "<node>.reg": injected pin-down exhaustion.  Surfaces like the
    // real limit below -- before any pinning work is charged -- so callers
    // exercise the same RegistrationError degradation path.
    if (faults->check(hca_->node().name() + ".reg")) {
      fabric.tracer().record(fabric.sim().now(), hca_->node().name(),
                             "fault_reg", static_cast<std::int64_t>(length),
                             0);
      throw RegistrationError(
          "register_memory: injected registration failure (resource "
          "exhaustion)");
    }
  }
  const std::int64_t limit = fabric.cfg().max_registered_bytes;
  if (limit > 0 &&
      registered_bytes_ + static_cast<std::int64_t>(length) > limit) {
    // Fail fast, before pinning work is charged (the hardware rejects the
    // request at translation-table allocation time).
    throw RegistrationError("register_memory: pin-down limit exceeded (" +
                            std::to_string(registered_bytes_) + " + " +
                            std::to_string(length) + " > " +
                            std::to_string(limit) + " bytes)");
  }
  co_await hca_->node().compute(
      fabric.cfg().reg_cost(static_cast<std::int64_t>(length)));
  const std::uint32_t lkey = fabric.next_key();
  const std::uint32_t rkey = fabric.next_key();
  auto mr = std::make_unique<MemoryRegion>(
      *this, static_cast<std::byte*>(addr), length, access, lkey, rkey);
  MemoryRegion* raw = mr.get();
  by_rkey_.emplace(rkey, raw);
  by_lkey_.emplace(lkey, raw);
  registered_bytes_ += static_cast<std::int64_t>(length);
  regions_.push_back(std::move(mr));
  fabric.tracer().record(fabric.sim().now(), hca_->node().name(), "reg_mr",
                         static_cast<std::int64_t>(length), rkey);
  co_return raw;
}

sim::Task<void> ProtectionDomain::deregister(MemoryRegion* mr) {
  if (mr == nullptr || !mr->valid() || &mr->pd() != this) {
    throw VerbsError("deregister: region not registered with this PD");
  }
  Fabric& fabric = hca_->fabric();
  co_await hca_->node().compute(
      fabric.cfg().dereg_cost(static_cast<std::int64_t>(mr->length())));
  fabric.tracer().record(fabric.sim().now(), hca_->node().name(), "dereg_mr",
                         static_cast<std::int64_t>(mr->length()), mr->rkey());
  by_rkey_.erase(mr->rkey());
  by_lkey_.erase(mr->lkey());
  registered_bytes_ -= static_cast<std::int64_t>(mr->length());
  mr->valid_ = false;
  // The MemoryRegion object stays alive (invalidated) so dangling handles
  // fail validation instead of dereferencing freed memory.
}

bool ProtectionDomain::check_sge(const Sge& sge) const {
  auto it = by_lkey_.find(sge.lkey);
  if (it == by_lkey_.end()) return false;
  return it->second->contains(sge.addr, sge.length);
}

}  // namespace ib
