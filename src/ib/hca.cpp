#include "ib/hca.hpp"

#include "ib/fabric.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"

namespace ib {

namespace {

/// Rail 0 keeps the pre-multirail resource names ("<node>.tx"/"<node>.rx")
/// so single-rail traces stay bit-identical; extra rails get a ".rail<r>"
/// infix.
std::string link_name(const Node& node, int rail, const char* dir) {
  if (rail == 0) return node.name() + "." + dir;
  return node.name() + ".rail" + std::to_string(rail) + "." + dir;
}

}  // namespace

Port::Port(Hca& hca, int index, int rail, double mbps)
    : hca_(&hca),
      index_(index),
      rail_(rail),
      mbps_(mbps),
      tx_link_(hca.fabric().sim(), link_name(hca.node(), rail, "tx"), mbps,
               hca.fabric().cfg().dma_chunk_bytes),
      rx_link_(hca.fabric().sim(), link_name(hca.node(), rail, "rx"), mbps,
               hca.fabric().cfg().dma_chunk_bytes) {}

Hca::Hca(Node& node, int index) : node_(&node), index_(index) {
  const FabricConfig& cfg = node.fabric().cfg();
  const int ports = cfg.ports_per_hca > 0 ? cfg.ports_per_hca : 1;
  for (int p = 0; p < ports; ++p) {
    const int rail = index * ports + p;
    ports_.push_back(
        std::make_unique<Port>(*this, p, rail, cfg.rail_mbps(rail)));
  }
}

Hca::~Hca() = default;

Fabric& Hca::fabric() const noexcept { return node_->fabric(); }

ProtectionDomain& Hca::alloc_pd() {
  pds_.push_back(std::make_unique<ProtectionDomain>(
      *this, static_cast<std::uint32_t>(pds_.size())));
  return *pds_.back();
}

CompletionQueue& Hca::create_cq(std::string name) {
  cqs_.push_back(
      std::make_unique<CompletionQueue>(fabric().sim(), std::move(name)));
  return *cqs_.back();
}

QueuePair& Hca::create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                          CompletionQueue& recv_cq) {
  return create_qp(pd, send_cq, recv_cq, *ports_[0]);
}

QueuePair& Hca::create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                          CompletionQueue& recv_cq, Port& port) {
  // Registration is modelled per node (one pin-down covers every rail), so
  // a PD from a sibling HCA is fine; a PD from another *node* is the same
  // programming error it always was.
  if (&pd.hca().node() != node_) {
    throw VerbsError("create_qp: PD belongs to a different HCA");
  }
  if (&port.hca() != this) {
    throw VerbsError("create_qp: port belongs to a different HCA");
  }
  qps_.push_back(std::make_unique<QueuePair>(*this, pd, send_cq, recv_cq,
                                             fabric().next_qpn(), port));
  fabric().register_qp(qps_.back()->qp_num(), qps_.back().get());
  return *qps_.back();
}

}  // namespace ib
