#include "ib/hca.hpp"

#include "ib/fabric.hpp"
#include "ib/node.hpp"
#include "ib/qp.hpp"

namespace ib {

Hca::Hca(Node& node)
    : node_(&node),
      tx_link_(node.fabric().sim(), node.name() + ".tx",
               node.fabric().cfg().link_mbps,
               node.fabric().cfg().dma_chunk_bytes),
      rx_link_(node.fabric().sim(), node.name() + ".rx",
               node.fabric().cfg().link_mbps,
               node.fabric().cfg().dma_chunk_bytes) {}

Hca::~Hca() = default;

Fabric& Hca::fabric() const noexcept { return node_->fabric(); }

ProtectionDomain& Hca::alloc_pd() {
  pds_.push_back(std::make_unique<ProtectionDomain>(
      *this, static_cast<std::uint32_t>(pds_.size())));
  return *pds_.back();
}

CompletionQueue& Hca::create_cq(std::string name) {
  cqs_.push_back(
      std::make_unique<CompletionQueue>(fabric().sim(), std::move(name)));
  return *cqs_.back();
}

QueuePair& Hca::create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                          CompletionQueue& recv_cq) {
  if (&pd.hca() != this) {
    throw VerbsError("create_qp: PD belongs to a different HCA");
  }
  qps_.push_back(std::make_unique<QueuePair>(*this, pd, send_cq, recv_cq,
                                             fabric().next_qpn()));
  fabric().register_qp(qps_.back()->qp_num(), qps_.back().get());
  return *qps_.back();
}

}  // namespace ib
