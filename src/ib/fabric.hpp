// The switched fabric: owns the nodes, the timing configuration, key/QP
// number allocation, and the staged data-path booking shared by all
// transfer types.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ib/config.hpp"
#include "ib/node.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ib {

class Port;
class QueuePair;

class Fabric {
 public:
  explicit Fabric(sim::Simulator& sim, FabricConfig cfg = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Adds a processing node (host + HCA) to the fabric.
  Node& add_node(std::string name = {});

  Node& node(std::size_t i) const { return *nodes_.at(i); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  sim::Simulator& sim() const noexcept { return *sim_; }
  const FabricConfig& cfg() const noexcept { return cfg_; }
  sim::Rng& rng() noexcept { return rng_; }

  void attach_tracer(sim::TraceSink* sink) { tracer_.attach(sink); }
  const sim::Tracer& tracer() const noexcept { return tracer_; }

  /// Deterministic fault injection (like the tracer: nullable, test-owned).
  /// QP send engines consult the schedule once per processed WQE, scoped by
  /// the initiating node's name.
  void attach_faults(sim::FaultSchedule* faults) { faults_ = faults; }
  sim::FaultSchedule* faults() const noexcept { return faults_; }

  std::uint32_t next_key() noexcept { return ++key_counter_; }
  std::uint32_t next_qpn() noexcept { return ++qpn_counter_; }

  /// QP-number directory, the moral equivalent of the subnet manager's
  /// path records: lets bootstrap code connect QPs after exchanging bare
  /// QP numbers through the process manager's KVS.
  void register_qp(std::uint32_t qpn, QueuePair* qp) { qp_dir_[qpn] = qp; }
  QueuePair* find_qp(std::uint32_t qpn) const {
    auto it = qp_dir_.find(qpn);
    return it == qp_dir_.end() ? nullptr : it->second;
  }

  /// Books the chunked data path for `n` bytes from `src` to `dst`
  /// (src bus -> src tx link -> wire -> dst rx link -> dst bus) and returns
  /// the absolute delivery time of the last chunk.  Resumes the caller once
  /// the *source-side* stages are fully booked so the caller can pipeline
  /// its next descriptor behind this one.  The port-level overload is the
  /// primitive (a QP's traffic rides its bound rail); the Node overload is
  /// rail 0 of each end, the legacy single-rail path.  `deg` carries a
  /// gray-failure degrade for this transfer (extra wire latency, scaled
  /// link service time); the default inactive spec takes the exact
  /// fault-free arithmetic path, keeping clean traces bit-identical.
  /// Passed by value: coroutine parameters are copied into the frame, so
  /// no reference can dangle across suspension.
  sim::Task<sim::Tick> book_path(Port& src, Port& dst, std::int64_t n,
                                 sim::FaultSchedule::DegradeSpec deg = {});
  sim::Task<sim::Tick> book_path(Node& src, Node& dst, std::int64_t n);

 private:
  sim::Simulator* sim_;
  FabricConfig cfg_;
  sim::Tracer tracer_;
  sim::FaultSchedule* faults_ = nullptr;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint32_t, QueuePair*> qp_dir_;
  std::uint32_t key_counter_ = 100;
  std::uint32_t qpn_counter_ = 0;
};

}  // namespace ib
