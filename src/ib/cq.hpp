// Completion queues.  Work-request completion is reported by the HCA engine
// pushing a Wc here; consumers poll (non-blocking, like real verbs) or
// await the arrival trigger when they have nothing else to do.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ib/types.hpp"
#include "sim/sync.hpp"

namespace ib {

class CompletionQueue {
 public:
  CompletionQueue(sim::Simulator& sim, std::string name)
      : name_(std::move(name)), arrived_(sim) {}
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Non-blocking poll, mirroring ibv_poll_cq with one entry.
  std::optional<Wc> poll() {
    if (entries_.empty()) return std::nullopt;
    Wc wc = entries_.front();
    entries_.pop_front();
    return wc;
  }

  /// Batched poll (ibv_poll_cq with a large entry array): appends every
  /// queued CQE to `out` in arrival order and empties the queue.  Returns
  /// the number appended.  One progress pass drains a whole rail's
  /// completions with one call instead of one poll per WQE.
  std::size_t poll_batch(std::vector<Wc>& out) {
    const std::size_t n = entries_.size();
    out.insert(out.end(), entries_.begin(), entries_.end());
    entries_.clear();
    return n;
  }

  /// Blocks until the CQ is non-empty -- or has overrun, which a consumer
  /// must notice too: the CQE it is waiting for may be among the dropped
  /// ones (it may have been drained by another poller by the time the
  /// caller runs; re-check).
  sim::Task<void> wait_nonempty() {
    co_await sim::wait_until(arrived_,
                             [this] { return !entries_.empty() || overrun_; });
  }

  /// Blocking convenience: poll, waiting as needed.
  sim::Task<Wc> next() {
    co_await sim::wait_until(arrived_, [this] { return !entries_.empty(); });
    Wc wc = entries_.front();
    entries_.pop_front();
    co_return wc;
  }

  void push(const Wc& wc) {
    entries_.push_back(wc);
    ++total_;
    arrived_.fire();
  }

  /// Injected CQ overrun: the CQE could not be queued.  Real HCAs lose the
  /// entry outright and raise an async error; we keep it aside so the
  /// drain-and-rearm recovery path (VerbsChannelBase::drain_cq) can
  /// resurface it as a flush -- waiters unblock, and the affected
  /// connection replays instead of hanging on a completion that never
  /// comes.
  void overrun_drop(const Wc& wc) {
    dropped_.push_back(wc);
    overrun_ = true;
    ++overruns_;
    arrived_.fire();
  }

  /// True while dropped CQEs await rearm.
  bool overrun() const noexcept { return overrun_; }

  /// Clears the overrun condition and hands back the dropped entries.
  std::deque<Wc> rearm() {
    overrun_ = false;
    return std::exchange(dropped_, {});
  }

  /// The CQE-arrival trigger, for deadline-bounded consumer waits: fire it
  /// via Simulator::call_at at the deadline so a wait_until predicate with
  /// a time clause is re-evaluated (the wait_connected_until idiom).
  sim::Trigger& arrival() noexcept { return arrived_; }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t depth() const noexcept { return entries_.size(); }
  std::uint64_t total_completions() const noexcept { return total_; }
  std::uint64_t overruns() const noexcept { return overruns_; }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  sim::Trigger arrived_;
  std::deque<Wc> entries_;
  std::deque<Wc> dropped_;
  bool overrun_ = false;
  std::uint64_t total_ = 0;
  std::uint64_t overruns_ = 0;
};

}  // namespace ib
