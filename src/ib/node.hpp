// A processing node: one host CPU's view of the memory system plus an HCA.
//
// The node owns the memory-bus bandwidth server that is shared between CPU
// copies and HCA DMA -- the contention at the heart of the paper's
// copy-based vs zero-copy comparison -- and provides the modelled memcpy
// used by every copy-based channel design.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ib/config.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ib {

class Fabric;
class Hca;
class Port;

class Node {
 public:
  Node(Fabric& fabric, int id, std::string name);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node();

  /// Modelled memcpy: blocks the calling process while charging the memory
  /// bus `copy_factor * n` bus-bytes.  `working_set` is the size of the
  /// buffer the copy walks through (defaults to n); working sets beyond the
  /// L2 size copy slower, reproducing the paper's cache effect (Fig. 11).
  sim::Task<void> copy(void* dst, const void* src, std::size_t n,
                       std::size_t working_set = 0);

  /// Pure CPU time (no bus traffic): protocol bookkeeping, compute phases.
  sim::Task<void> compute(sim::Tick t);

  Fabric& fabric() const noexcept { return *fabric_; }
  /// The first HCA (the legacy single-adapter accessor).
  Hca& hca() const noexcept { return *hcas_[0]; }
  Hca& hca(int i) const { return *hcas_.at(static_cast<std::size_t>(i)); }
  int hca_count() const noexcept { return static_cast<int>(hcas_.size()); }
  /// Rails on this node (hcas * ports per hca), flat-indexed.
  int num_rails() const noexcept;
  Port& rail(int r) const;
  sim::BandwidthResource& bus() noexcept { return bus_; }

  /// Fires whenever an incoming RDMA write / read response / send lands in
  /// this node's memory.  Channels use it to sleep between polls of their
  /// ring-buffer flags without burning virtual time.
  sim::Trigger& dma_arrival() noexcept { return dma_arrival_; }

  int id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  std::int64_t copied_bytes() const noexcept { return copied_bytes_; }

 private:
  Fabric* fabric_;
  int id_;
  std::string name_;
  sim::BandwidthResource bus_;
  sim::Trigger dma_arrival_;
  std::vector<std::unique_ptr<Hca>> hcas_;
  std::int64_t copied_bytes_ = 0;
};

}  // namespace ib
