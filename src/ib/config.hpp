// Timing model of the paper's testbed.
//
// The calibration targets are the raw numbers the paper reports for its
// InfiniBand platform (Mellanox InfiniHost MT23108 on PCI-X 133, InfiniScale
// switch, dual 2.4 GHz Xeon, 512 KB L2):
//
//   * verbs-level RDMA write latency (small)   : 5.9 us
//   * verbs-level RDMA write peak bandwidth    : 870 MB/s   (MB = 1e6 B)
//   * verbs-level RDMA read  latency (small)   : ~11 us (fig 15 shape)
//   * standalone memcpy bandwidth (large)      : < 800 MB/s (section 4.4)
//
// Decomposition for a small RDMA write:
//   wqe_overhead (0.8) + wire_latency (4.1) + rx_overhead (1.0)  = 5.9 us
// A small RDMA read adds the request round trip and responder turnaround:
//   wqe (0.8) + wire (4.1) + responder_overhead (1.5) + wire (4.1) + rx (1.0)
//   = 11.5 us.
//
// The memory bus is modelled as a per-node FIFO bandwidth server of
// 1600 MB/s raw.  A CPU copy of n bytes consumes 2n bus-bytes while the
// working set fits in L2 (read + write traffic) and 3n beyond it
// (write-allocate plus dirty eviction), giving 800 / 533 MB/s standalone
// copy bandwidth -- the effect behind both the pipelining design's plateau
// (~bus/3) and its large-message droop (~bus/4), per Figures 8, 9, 11.
// DMA consumes n bus-bytes on each end.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace ib {

struct FabricConfig {
  // -- link / wire ---------------------------------------------------------
  /// Effective point-to-point data rate of HCA + PCI-X + 4X link (MB/s).
  double link_mbps = 870.0;
  /// HCAs per node and ports per HCA.  A (hca, port) pair is one *rail*:
  /// its own link bandwidth servers, its own failure domain.  Rails are
  /// flat-indexed r = hca * ports_per_hca + port; rail 0 is the legacy
  /// single-port fabric, and with the 1x1 default every timing is
  /// bit-identical to the pre-multirail model.  Paper-era clusters shipped
  /// dual-port InfiniHosts; the shared PCI-X memory bus (bus_mbps) still
  /// caps the aggregate, exactly as it did on real hardware.
  int num_hcas = 1;
  int ports_per_hca = 1;
  /// Optional per-rail link rate override (asymmetric fabrics: a fast and a
  /// slow rail).  Rails beyond the vector, or entries <= 0, use link_mbps.
  std::vector<double> rail_link_mbps;
  /// One-way propagation including switch traversal and MAC framing.
  sim::Tick wire_latency = sim::usec(4.1);
  /// RC acknowledgement propagation (sender-side CQE lags delivery by this).
  sim::Tick ack_latency = sim::usec(4.1);

  // -- HCA processing ------------------------------------------------------
  /// Per-WQE fetch/processing at the initiator.
  sim::Tick wqe_overhead = sim::usec(0.8);
  /// Receive-side processing charged once per incoming message.
  sim::Tick rx_overhead = sim::usec(1.0);
  /// Responder-side turnaround for an RDMA read request.
  sim::Tick read_responder_overhead = sim::usec(1.5);
  /// Maximum RDMA reads a QP may have in flight (the InfiniHost-era
  /// outstanding-read context limit).  This -- the per-read request round
  /// trip it forces -- is what depresses mid-size RDMA read bandwidth
  /// relative to RDMA write (Figure 15).
  int max_outstanding_reads = 1;

  // -- host memory system --------------------------------------------------
  /// Raw memory-bus rate (MB/s); memcpy sees bus/2 or bus/3 of this.
  double bus_mbps = 1600.0;
  /// Working sets larger than this copy at 3 bus-bytes/byte instead of 2.
  std::int64_t cache_bytes = 256 * 1024;
  double copy_factor_cached = 2.0;
  double copy_factor_uncached = 3.0;

  // -- memory registration (section 5: "expensive operations") --------------
  sim::Tick reg_base = sim::usec(10.0);
  sim::Tick reg_per_page = sim::nsec(250.0);
  sim::Tick dereg_base = sim::usec(5.0);
  sim::Tick dereg_per_page = sim::nsec(50.0);
  std::int64_t page_bytes = 4096;

  // -- modelling knobs ------------------------------------------------------
  /// Stage-interleaving granularity for the DMA data path (link stages).
  std::int64_t dma_chunk_bytes = 8192;
  /// Interleaving granularity for CPU copies on the memory bus; finer than
  /// the DMA chunk so copies can slot into the gaps between DMA bookings.
  std::int64_t bus_chunk_bytes = 2048;
  /// Probability that one transmission attempt of a work request fails --
  /// 0 in all benchmarks; used by failure-injection tests.  The RC service
  /// retransmits transparently (as real HCAs do): after a failed initial
  /// attempt the HCA retries up to `retry_count` times (one "retransmit"
  /// trace record and one `retry_delay` each), and the WQE completes with
  /// kTransportError only when all retry_count + 1 consecutive attempts
  /// fail.  With retry_count = 0 every attempt failure surfaces directly.
  /// The error CQE lags the final attempt by the NAK round trip
  /// (2 * wire_latency).  Pinned by Inject.RetryStormTimingMatchesDoc.
  double inject_error_rate = 0.0;
  std::uint64_t inject_seed = 1;
  int retry_count = 7;
  sim::Tick retry_delay = sim::usec(10.0);
  /// HCA pin-down limit: total bytes register_memory may have outstanding
  /// per protection domain before it fails with RegistrationError (real
  /// HCAs run out of translation/pinning resources).  0 = unlimited.
  std::int64_t max_registered_bytes = 0;

  sim::Tick reg_cost(std::int64_t bytes) const {
    const std::int64_t pages = (bytes + page_bytes - 1) / page_bytes;
    return reg_base + pages * reg_per_page;
  }
  sim::Tick dereg_cost(std::int64_t bytes) const {
    const std::int64_t pages = (bytes + page_bytes - 1) / page_bytes;
    return dereg_base + pages * dereg_per_page;
  }
  double copy_factor(std::int64_t working_set) const {
    return working_set > cache_bytes ? copy_factor_uncached
                                     : copy_factor_cached;
  }
  int num_rails() const noexcept { return num_hcas * ports_per_hca; }
  double rail_mbps(int rail) const {
    if (rail >= 0 && rail < static_cast<int>(rail_link_mbps.size()) &&
        rail_link_mbps[static_cast<std::size_t>(rail)] > 0.0) {
      return rail_link_mbps[static_cast<std::size_t>(rail)];
    }
    return link_mbps;
  }
};

}  // namespace ib
