#include "ib/qp.hpp"

#include <cstring>

#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "ib/node.hpp"
#include "sim/fault.hpp"

namespace ib {

namespace {

/// Gathers an SGE list into a contiguous staging buffer (models the HCA's
/// DMA engine reading the source at descriptor-processing time).  Staging
/// storage comes from the simulator's buffer pool: per-WQE heap churn is
/// the DES hot path at 1000-rank scale.
sim::BufferPool::Buffer gather(sim::BufferPool& pool,
                               const std::vector<Sge>& sgl) {
  std::size_t total = 0;
  for (const auto& s : sgl) total += s.length;
  sim::BufferPool::Buffer out = pool.acquire(total);
  std::size_t off = 0;
  for (const auto& s : sgl) {
    std::memcpy(out->data() + off, s.addr, s.length);
    off += s.length;
  }
  return out;
}

/// Scatters a staging buffer into an SGE list; returns bytes placed.
std::size_t scatter(const std::vector<std::byte>& data,
                    const std::vector<Sge>& sgl) {
  std::size_t off = 0;
  for (const auto& s : sgl) {
    if (off >= data.size()) break;
    const std::size_t n = std::min(s.length, data.size() - off);
    std::memcpy(s.addr, data.data() + off, n);
    off += n;
  }
  return off;
}

constexpr std::int64_t kCtrlBytes = 16;  // read-request packet on the wire

}  // namespace

QueuePair::QueuePair(Hca& hca, ProtectionDomain& pd, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq, std::uint32_t qp_num,
                     Port& port)
    : hca_(&hca),
      port_(&port),
      pd_(&pd),
      send_cq_(&send_cq),
      recv_cq_(&recv_cq),
      qp_num_(qp_num),
      sq_(std::make_unique<sim::Mailbox<SendWr>>(hca.fabric().sim())),
      responder_q_(
          std::make_unique<sim::Mailbox<ReadRequest>>(hca.fabric().sim())),
      read_credit_(std::make_unique<sim::Trigger>(hca.fabric().sim())),
      quiesce_(std::make_unique<sim::Trigger>(hca.fabric().sim())),
      connected_(std::make_unique<sim::Trigger>(hca.fabric().sim())) {}

Node& QueuePair::node() const { return hca_->node(); }

void QueuePair::connect(QueuePair& peer) {
  if (peer_ != nullptr || peer.peer_ != nullptr) {
    throw VerbsError("connect: QP already connected");
  }
  if (&peer == this) throw VerbsError("connect: QP cannot connect to itself");
  peer_ = &peer;
  peer.peer_ = this;
  sim::Simulator& sim = hca_->fabric().sim();
  const std::string tag =
      node().name() + ".qp" + std::to_string(qp_num_);
  const std::string peer_tag =
      peer.node().name() + ".qp" + std::to_string(peer.qp_num_);
  sim.spawn_daemon(send_engine(), tag + ".send");
  sim.spawn_daemon(responder_engine(), tag + ".responder");
  sim.spawn_daemon(peer.send_engine(), peer_tag + ".send");
  sim.spawn_daemon(peer.responder_engine(), peer_tag + ".responder");
  connected_->fire();
  peer.connected_->fire();
}

sim::Task<void> QueuePair::wait_connected() {
  co_await sim::wait_until(*connected_, [this] { return peer_ != nullptr; });
}

sim::Task<bool> QueuePair::wait_connected_until(sim::Tick deadline) {
  sim::Simulator& sim = connected_->simulator();
  // The trigger re-evaluates predicates only when fired; fire it at the
  // deadline so the time clause is observed.
  sim::Trigger* t = connected_.get();
  sim.call_at(deadline, [t] { t->fire(); });
  co_await sim::wait_until(*connected_, [this, deadline, &sim] {
    return peer_ != nullptr || sim.now() >= deadline;
  });
  co_return peer_ != nullptr;
}

sim::Task<void> QueuePair::quiesce() {
  co_await sim::wait_until(*quiesce_, [this] {
    return !busy_ && sq_->empty() && inflight_deliveries_ == 0 &&
           reads_in_flight_ == 0;
  });
}

void QueuePair::reset() {
  if (busy_ || !sq_->empty() || inflight_deliveries_ != 0 ||
      reads_in_flight_ != 0) {
    throw VerbsError("reset: QP not quiesced");
  }
  error_ = false;
}

void QueuePair::post_send(SendWr wr) {
  if (peer_ == nullptr) throw VerbsError("post_send: QP not connected");
  switch (wr.opcode) {
    case Opcode::kRdmaWrite:
      ++hca_->writes_posted;
      break;
    case Opcode::kRdmaRead:
      ++hca_->reads_posted;
      break;
    case Opcode::kSend:
      ++hca_->sends_posted;
      break;
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap:
      ++hca_->atomics_posted;
      break;
  }
  sq_->push(std::move(wr));
}

void QueuePair::post_recv(RecvWr wr) {
  if (!unclaimed_.empty()) {
    // A send arrived before this receive was posted (modelled as infinite
    // RNR retry); consume it now.
    InboundSend inbound = std::move(unclaimed_.front());
    unclaimed_.pop_front();
    if (inbound.data->size() > wr.total_length()) {
      complete_now(*recv_cq_, Wc{wr.wr_id, WcStatus::kLocalProtectionError,
                                 Opcode::kSend, 0, qp_num_, true});
      return;
    }
    const std::size_t n = scatter(*inbound.data, wr.sgl);
    complete_now(*recv_cq_, Wc{wr.wr_id, WcStatus::kSuccess, Opcode::kSend, n,
                               qp_num_, true});
    return;
  }
  rq_.push_back(std::move(wr));
}

void QueuePair::complete(CompletionQueue& cq, const Wc& wc, sim::Tick at) {
  // QPs live as long as their HCA; capturing `this` across the delay is
  // safe (close() only flips the error flag).
  hca_->fabric().sim().call_at(at, [this, &cq, wc] { deliver_wc(cq, wc); });
}

void QueuePair::complete_now(CompletionQueue& cq, const Wc& wc) {
  deliver_wc(cq, wc);
}

void QueuePair::deliver_wc(CompletionQueue& cq, const Wc& wc) {
  Fabric& fabric = hca_->fabric();
  if (sim::FaultSchedule* faults = fabric.faults(); faults != nullptr) {
    // Any fault scheduled on the node's ".cq" scope models a CQ overrun:
    // the entry cannot be queued and is lost from the consumer's view.
    // The CQ keeps it aside so the channel's drain-and-rearm recovery can
    // resurface it as a flush instead of hanging its waiter forever.
    if (faults->check(node().name() + ".cq")) {
      fabric.tracer().record(fabric.sim().now(), cq.name(), "cq_overrun", 0,
                             wc.wr_id);
      cq.overrun_drop(wc);
      hca_->node().dma_arrival().fire();
      return;
    }
  }
  cq.push(wc);
  // A CQE is node activity: progress loops sleeping on dma_arrival must
  // wake for completions too (e.g. a rendezvous write finishing).
  hca_->node().dma_arrival().fire();
}

bool QueuePair::validate_local(const std::vector<Sge>& sgl,
                               std::uint32_t need_access, std::uint64_t wr_id,
                               Opcode op) {
  // All registrations grant local read; kLocalWrite (needed by RDMA-read
  // destinations) is folded into check_sge's coverage test because our
  // register_memory always grants it -- the hook is kept for completeness.
  (void)need_access;
  for (const auto& sge : sgl) {
    if (!pd_->check_sge(sge)) {
      complete_now(*send_cq_, Wc{wr_id, WcStatus::kLocalProtectionError, op, 0,
                                 qp_num_, false});
      enter_error();
      return false;
    }
  }
  return true;
}

void QueuePair::enter_error() { error_ = true; }

void QueuePair::read_done() {
  --reads_in_flight_;
  read_credit_->fire();
  quiesce_->fire();
}

void QueuePair::deliver_send(InboundSend inbound) {
  const std::size_t n = inbound.data->size();
  if (rq_.empty()) {
    unclaimed_.push_back(std::move(inbound));
    return;
  }
  RecvWr wr = std::move(rq_.front());
  rq_.pop_front();
  if (n > wr.total_length()) {
    complete_now(*recv_cq_, Wc{wr.wr_id, WcStatus::kLocalProtectionError,
                               Opcode::kSend, 0, qp_num_, true});
    return;
  }
  scatter(*inbound.data, wr.sgl);
  complete_now(*recv_cq_,
               Wc{wr.wr_id, WcStatus::kSuccess, Opcode::kSend, n, qp_num_,
                  true});
}

sim::Task<void> QueuePair::send_engine() {
  for (;;) {
    SendWr wr = co_await sq_->pop();
    busy_ = true;
    co_await process_wqe(std::move(wr));
    busy_ = false;
    quiesce_->fire();
  }
}

sim::Task<void> QueuePair::process_wqe(SendWr wr) {
  Fabric& fabric = hca_->fabric();
  sim::Simulator& sim = fabric.sim();
  const FabricConfig& cfg = fabric.cfg();
  const std::string tag = node().name() + ".qp" + std::to_string(qp_num_);
  const std::size_t n = wr.total_length();

  if (error_) {
    complete_now(*send_cq_, Wc{wr.wr_id, WcStatus::kFlushError, wr.opcode, 0,
                               qp_num_, false});
    co_return;
  }

  co_await sim.delay(cfg.wqe_overhead);

  // Gray-failure degrade composed for this WQE from the rail scope and the
  // node scope (sub-scope inheritance: "node0.rail1" inherits "node0"'s
  // windows on top of its own).  Stays inactive -- and costs only the
  // any_degrade() flag test -- when no degrade windows are armed.
  sim::FaultSchedule::DegradeSpec deg;

  // Rail failure domain: any fault scheduled on the "<node>.rail<r>" scope
  // takes the whole port down, sticky -- every WQE initiated through this
  // rail thereafter (any QP bound to it) exhausts the RC retry storm and
  // surfaces a transport error, like real link death under a fabric whose
  // SM never reroutes.  Checked at the WQE initiator only; a live rail
  // counts one scope operation per WQE, so schedules are deterministic.
  if (port_->up()) {
    if (sim::FaultSchedule* faults = fabric.faults(); faults != nullptr) {
      const std::string rs =
          sim::FaultSchedule::rail_scope(node().name(), port_->rail());
      if (faults->check(rs)) {
        port_->fail();
        fabric.tracer().record(sim.now(), tag, "rail_down", port_->rail(),
                               wr.wr_id);
      }
      if (faults->any_degrade()) {
        // The check() above counted this WQE; the degrade window is keyed
        // to the same op counter.
        deg.compose(faults->degrade_at(rs, faults->observed(rs) - 1));
      }
    }
  }
  if (!port_->up()) {
    fabric.tracer().record(sim.now(), tag, "fault_kill",
                           static_cast<std::int64_t>(n), wr.wr_id);
    co_await sim.delay(cfg.retry_count * cfg.retry_delay);
    enter_error();
    complete(*send_cq_,
             Wc{wr.wr_id, WcStatus::kTransportError, wr.opcode, 0, qp_num_,
                false},
             sim.now() + 2 * cfg.wire_latency);
    co_return;
  }

  // Permanent process death (FaultSchedule::rank_down): a WQE initiated by
  // a dead node, or towards one, exhausts the RC retry storm and surfaces a
  // transport error -- the remote endpoint no longer acks anything.  The QP
  // enters the error state so queued WQEs flush; nothing against a dead
  // node ever succeeds again.
  if (sim::FaultSchedule* faults = fabric.faults();
      faults != nullptr && faults->any_rank_down() &&
      (faults->node_dead(node().name()) ||
       (peer_ != nullptr && faults->node_dead(peer_->node().name())))) {
    fabric.tracer().record(sim.now(), tag, "fault_kill",
                           static_cast<std::int64_t>(n), wr.wr_id);
    co_await sim.delay(cfg.retry_count * cfg.retry_delay);
    enter_error();
    complete(*send_cq_,
             Wc{wr.wr_id, WcStatus::kTransportError, wr.opcode, 0, qp_num_,
                false},
             sim.now() + 2 * cfg.wire_latency);
    co_return;
  }

  bool corrupt_payload = false;
  if (sim::FaultSchedule* faults = fabric.faults(); faults != nullptr) {
    if (auto f = faults->check(node().name())) {
      using Kind = sim::FaultSchedule::Fault::Kind;
      if (f->kind == Kind::kCorrupt &&
          (wr.opcode == Opcode::kRdmaWrite || wr.opcode == Opcode::kSend ||
           wr.opcode == Opcode::kRdmaRead)) {
        // Silent corruption: the operation completes as a normal success,
        // but one payload bit flips in flight (an undetected link/DMA
        // error -- beyond what the RC CRC catches).  For a read, the flip
        // happens in the responder's reply.
        fabric.tracer().record(sim.now(), tag, "fault_corrupt",
                               static_cast<std::int64_t>(n), wr.wr_id);
        corrupt_payload = true;
      } else {
        // Deterministic kill: model the full RC retry storm before the HCA
        // gives up, then report the transport error a NAK round trip later.
        // A fatal fault also moves the QP to the error state, as real retry
        // exhaustion does (the random-injection path below deliberately
        // does not -- see Inject.ExhaustedRetriesSurfaceAsTransportErrors).
        // A kExhaust or kCorrupt fault landing here (atomics) degrades to a
        // non-fatal kill.
        fabric.tracer().record(sim.now(), tag, "fault_kill",
                               static_cast<std::int64_t>(n), wr.wr_id);
        co_await sim.delay(cfg.retry_count * cfg.retry_delay);
        if (f->kind == Kind::kKill && f->fatal) enter_error();
        complete(*send_cq_,
                 Wc{wr.wr_id, WcStatus::kTransportError, wr.opcode, 0,
                    qp_num_, false},
                 sim.now() + 2 * cfg.wire_latency);
        co_return;
      }
    }
    if (faults->any_degrade()) {
      deg.compose(
          faults->degrade_at(node().name(), faults->observed(node().name()) - 1));
    }
  }

  if (deg.drop_prob > 0.0) {
    // Gray loss: each attempt drops with drop_prob and the RC service
    // retransmits transparently; only retry-count exhaustion surfaces, and
    // non-fatally -- the link is degraded, not dead, so the QP stays up.
    bool exhausted = false;
    int attempts = 0;
    while (fabric.rng().chance(deg.drop_prob)) {
      if (++attempts > cfg.retry_count) {
        exhausted = true;
        break;
      }
      fabric.tracer().record(sim.now(), tag, "retransmit", 0, wr.wr_id);
      co_await sim.delay(cfg.retry_delay);
    }
    if (exhausted) {
      complete(*send_cq_,
               Wc{wr.wr_id, WcStatus::kTransportError, wr.opcode, 0,
                  qp_num_, false},
               sim.now() + 2 * cfg.wire_latency);
      co_return;
    }
  }

  if (cfg.inject_error_rate > 0.0) {
    // The RC service retransmits failed attempts transparently; only a
    // retry-count exhaustion surfaces as a completion error.
    bool exhausted = false;
    int attempts = 0;
    while (fabric.rng().chance(cfg.inject_error_rate)) {
      if (++attempts > cfg.retry_count) {
        exhausted = true;
        break;
      }
      fabric.tracer().record(sim.now(), tag, "retransmit", 0, wr.wr_id);
      co_await sim.delay(cfg.retry_delay);
    }
    if (exhausted) {
      complete(*send_cq_,
               Wc{wr.wr_id, WcStatus::kTransportError, wr.opcode, 0,
                  qp_num_, false},
               sim.now() + 2 * cfg.wire_latency);
      co_return;
    }
  }

  const std::uint32_t need =
      wr.opcode == Opcode::kRdmaWrite || wr.opcode == Opcode::kSend
          ? 0u
          : static_cast<std::uint32_t>(kLocalWrite);
  if (!validate_local(wr.sgl, need, wr.wr_id, wr.opcode)) {
    co_return;
  }

  switch (wr.opcode) {
    case Opcode::kRdmaWrite: {
      const MemoryRegion* mr = peer_->pd().find_rkey(wr.rkey);
      if (mr == nullptr || !mr->contains(wr.remote_addr, n) ||
          (mr->access() & kRemoteWrite) == 0) {
        // The initiator learns of the NAK a round trip later.
        complete(*send_cq_,
                 Wc{wr.wr_id, WcStatus::kRemoteAccessError, wr.opcode, 0,
                    qp_num_, false},
                 sim.now() + 2 * cfg.wire_latency);
        enter_error();
        break;
      }
      fabric.tracer().record(sim.now(), tag, "rdma_write",
                             static_cast<std::int64_t>(n), wr.wr_id);
      auto staging = gather(sim.buffer_pool(), wr.sgl);
      if (corrupt_payload && !staging->empty()) {
        (*staging)[staging->size() / 2] ^= std::byte{1};
      }
      const sim::Tick delivered = co_await fabric.book_path(
          *port_, *peer_->port_, static_cast<std::int64_t>(n), deg);
      Node* dst_node = &peer_->node();
      auto* dst = reinterpret_cast<std::byte*>(wr.remote_addr);
      ++inflight_deliveries_;
      sim.call_at(delivered, [this, staging, dst, dst_node] {
        std::memcpy(dst, staging->data(), staging->size());
        dst_node->dma_arrival().fire();
        --inflight_deliveries_;
        quiesce_->fire();
      });
      if (wr.signaled) {
        complete(*send_cq_,
                 Wc{wr.wr_id, WcStatus::kSuccess, wr.opcode, n, qp_num_,
                    false},
                 delivered + cfg.ack_latency);
      }
      break;
    }

    case Opcode::kSend: {
      fabric.tracer().record(sim.now(), tag, "send",
                             static_cast<std::int64_t>(n), wr.wr_id);
      auto staging = gather(sim.buffer_pool(), wr.sgl);
      if (corrupt_payload && !staging->empty()) {
        (*staging)[staging->size() / 2] ^= std::byte{1};
      }
      const sim::Tick delivered = co_await fabric.book_path(
          *port_, *peer_->port_, static_cast<std::int64_t>(n), deg);
      QueuePair* peer = peer_;
      ++inflight_deliveries_;
      sim.call_at(delivered, [this, staging, peer]() mutable {
        peer->deliver_send(InboundSend{std::move(staging)});
        peer->node().dma_arrival().fire();
        --inflight_deliveries_;
        quiesce_->fire();
      });
      if (wr.signaled) {
        complete(*send_cq_,
                 Wc{wr.wr_id, WcStatus::kSuccess, wr.opcode, n, qp_num_,
                    false},
                 delivered + cfg.ack_latency);
      }
      break;
    }

    case Opcode::kRdmaRead:
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap: {
      const bool is_atomic = wr.opcode != Opcode::kRdmaRead;
      const std::uint32_t need =
          is_atomic ? static_cast<std::uint32_t>(kRemoteAtomic)
                    : static_cast<std::uint32_t>(kRemoteRead);
      const MemoryRegion* mr = peer_->pd().find_rkey(wr.rkey);
      if (mr == nullptr || !mr->contains(wr.remote_addr, n) ||
          (mr->access() & need) == 0 || (is_atomic && n != 8)) {
        complete(*send_cq_,
                 Wc{wr.wr_id, WcStatus::kRemoteAccessError, wr.opcode, 0,
                    qp_num_, false},
                 sim.now() + 2 * cfg.wire_latency);
        enter_error();
        break;
      }
      fabric.tracer().record(sim.now(), tag,
                             is_atomic ? "atomic" : "rdma_read",
                             static_cast<std::int64_t>(n), wr.wr_id);
      // Atomics share the outstanding-read context limit (Figure 15's
      // cause for reads; the same HCA resource serves both).
      co_await sim::wait_until(*read_credit_, [this, &cfg] {
        return reads_in_flight_ < cfg.max_outstanding_reads;
      });
      if (error_) {
        // The QP was torn down while this WQE waited for a read context.
        complete_now(*send_cq_, Wc{wr.wr_id, WcStatus::kFlushError, wr.opcode,
                                   0, qp_num_, false});
        break;
      }
      ++reads_in_flight_;
      // Ship the request packet to the responder through this QP's rail.
      const sim::Tick req_sent =
          port_->tx_link().reserve(kCtrlBytes + (is_atomic ? 16 : 0));
      co_await sim.delay_until(req_sent);
      sim::Tick req_wire = cfg.wire_latency;
      if (deg.active()) {
        req_wire = deg.latency_add +
                   static_cast<sim::Tick>(deg.latency_mult *
                                          static_cast<double>(cfg.wire_latency));
      }
      const sim::Tick req_arrives = sim.now() + req_wire;
      QueuePair* peer = peer_;
      ReadRequest req{wr.opcode, wr.remote_addr, wr.rkey,    wr.sgl,
                      wr.wr_id,  wr.signaled,    wr.atomic_arg,
                      wr.atomic_swap, corrupt_payload};
      req.deg = deg;
      sim.call_at(req_arrives, [peer, req = std::move(req)]() mutable {
        peer->responder_q_->push(std::move(req));
      });
      break;
    }
  }
}

sim::Task<void> QueuePair::responder_engine() {
  // Serves RDMA-read requests *initiated by the peer*: streams data from
  // this node's memory back through this node's TX link (contending with
  // this side's own outbound traffic -- the mechanism behind Figure 15).
  Fabric& fabric = hca_->fabric();
  sim::Simulator& sim = fabric.sim();
  const FabricConfig& cfg = fabric.cfg();
  const std::string tag =
      node().name() + ".qp" + std::to_string(qp_num_) + ".resp";

  for (;;) {
    ReadRequest req = co_await responder_q_->pop();
    co_await sim.delay(cfg.read_responder_overhead);

    std::size_t n = 0;
    for (const auto& s : req.dest_sgl) n += s.length;

    const bool is_atomic = req.op != Opcode::kRdmaRead;
    // Re-validate: the region may have been deregistered since the
    // initiator's optimistic check.
    const std::uint32_t need = is_atomic
                                   ? static_cast<std::uint32_t>(kRemoteAtomic)
                                   : static_cast<std::uint32_t>(kRemoteRead);
    const MemoryRegion* mr = pd_->find_rkey(req.rkey);
    QueuePair* initiator = peer_;
    if (mr == nullptr || !mr->contains(req.remote_addr, n) ||
        (mr->access() & need) == 0) {
      sim.call_at(sim.now() + cfg.wire_latency, [initiator, req] {
        initiator->complete_now(
            initiator->send_cq(),
            Wc{req.wr_id, WcStatus::kRemoteAccessError, req.op, 0,
               initiator->qp_num(), false});
        initiator->enter_error();
        initiator->read_done();
      });
      continue;
    }

    fabric.tracer().record(sim.now(), tag,
                           is_atomic ? "atomic_response" : "read_response",
                           static_cast<std::int64_t>(n), req.wr_id);
    auto staging = sim.buffer_pool().acquire(n);
    if (is_atomic) {
      // Execute the atomic at the responder: read-modify-write is a single
      // event in virtual time, so it is atomic with respect to every other
      // simulated agent -- exactly the HCA's guarantee.
      auto* target = reinterpret_cast<std::uint64_t*>(req.remote_addr);
      const std::uint64_t old = *target;
      if (req.op == Opcode::kFetchAdd) {
        *target = old + req.atomic_arg;
      } else if (old == req.atomic_arg) {
        *target = req.atomic_swap;
      }
      std::memcpy(staging->data(), &old, 8);
    } else {
      std::memcpy(staging->data(),
                  reinterpret_cast<const std::byte*>(req.remote_addr), n);
    }
    if (req.corrupt && n > 0) {
      (*staging)[n / 2] ^= std::byte{1};
      fabric.tracer().record(sim.now(), tag, "fault_corrupt",
                             static_cast<std::int64_t>(n), req.wr_id);
    }
    const sim::Tick delivered = co_await fabric.book_path(
        *port_, *initiator->port_, static_cast<std::int64_t>(n), req.deg);
    sim.call_at(delivered, [staging, initiator, req, n] {
      scatter(*staging, req.dest_sgl);
      initiator->node().dma_arrival().fire();
      initiator->read_done();
      if (req.signaled) {
        initiator->complete_now(
            initiator->send_cq(),
            Wc{req.wr_id, WcStatus::kSuccess, req.op, n,
               initiator->qp_num(), false});
      }
    });
  }
}

}  // namespace ib
