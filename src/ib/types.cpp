#include "ib/types.hpp"

namespace ib {

const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess:
      return "success";
    case WcStatus::kLocalProtectionError:
      return "local-protection-error";
    case WcStatus::kRemoteAccessError:
      return "remote-access-error";
    case WcStatus::kTransportError:
      return "transport-error";
    case WcStatus::kFlushError:
      return "flush-error";
  }
  return "unknown";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kSend:
      return "send";
    case Opcode::kRdmaWrite:
      return "rdma-write";
    case Opcode::kRdmaRead:
      return "rdma-read";
    case Opcode::kFetchAdd:
      return "fetch-add";
    case Opcode::kCompareSwap:
      return "compare-swap";
  }
  return "unknown";
}

}  // namespace ib
