// SRQ-style shared receive pool.
//
// The paper's CH3 designs give every rank pair a dedicated eager receive
// ring, so a rank's receive memory grows O(ranks).  Real MPI-over-IB stacks
// moved to shared receive queues (SRQ) to break exactly that: receive
// buffers are pooled per rank and leased to whichever peers are actively
// talking.  We model the memory/credit side of SRQ at ring granularity: a
// SharedRecvPool owns `rings * ring_bytes` of receive memory, registered
// once (one rkey covers every lease), and hands out ring-sized leases to
// connections as they are wired.  Exhaustion is a backpressure condition --
// the requester stays cold and retries, surfacing through the channel's
// credit_stalls counter -- never a deadlock.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace ib {

class SharedRecvPool {
 public:
  /// An unleased pool (rings == 0) is valid and always exhausted; channels
  /// use that as the "dedicated rings" degenerate mode.
  SharedRecvPool() = default;

  void reset(std::size_t rings, std::size_t ring_bytes) {
    rings_ = rings;
    ring_bytes_ = ring_bytes;
    storage_.assign(rings * ring_bytes, std::byte{0});
    free_.clear();
    free_.reserve(rings);
    // LIFO free list: the most recently released (cache-warm) lease is
    // reused first.  Indices pushed in reverse so lease 0 goes out first.
    for (std::size_t i = rings; i > 0; --i) free_.push_back(i - 1);
    leased_ = 0;
    high_water_ = 0;
  }

  bool configured() const noexcept { return rings_ > 0; }

  /// Leases one ring; returns its base pointer, or nullptr when the pool is
  /// exhausted (caller backpressures).  The extent is zeroed -- a fresh
  /// lease must not replay a previous tenant's polling flags.
  std::byte* acquire() {
    if (free_.empty()) return nullptr;
    const std::size_t idx = free_.back();
    free_.pop_back();
    std::byte* base = storage_.data() + idx * ring_bytes_;
    std::memset(base, 0, ring_bytes_);
    ++leased_;
    if (leased_ > high_water_) high_water_ = leased_;
    return base;
  }

  void release(std::byte* base) {
    const std::size_t off = static_cast<std::size_t>(base - storage_.data());
    if (base == nullptr || off % ring_bytes_ != 0 ||
        off / ring_bytes_ >= rings_) {
      throw std::logic_error("SharedRecvPool: release of a foreign pointer");
    }
    free_.push_back(off / ring_bytes_);
    --leased_;
  }

  std::byte* base() noexcept { return storage_.data(); }
  std::size_t free_rings() const noexcept { return free_.size(); }
  std::size_t bytes() const noexcept { return storage_.size(); }
  std::size_t leased() const noexcept { return leased_; }
  std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::size_t rings_ = 0;
  std::size_t ring_bytes_ = 0;
  std::vector<std::byte> storage_;
  std::vector<std::size_t> free_;
  std::size_t leased_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace ib
