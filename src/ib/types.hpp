// Verbs-level value types: work requests, scatter/gather entries, and
// completions.  These mirror the InfiniBand transport-layer consumer
// interface (descriptors posted to work queues, completions reported
// through completion queues).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ib {

enum class Opcode : std::uint8_t {
  kSend,       // channel semantics: consumes a posted receive at the target
  kRdmaWrite,  // memory semantics: one-sided write, transparent to target SW
  kRdmaRead,   // memory semantics: one-sided read ("pull")
  // 64-bit remote atomics (the "atomic operations in InfiniBand" of the
  // paper's future-work section).  Both return the prior value into the
  // 8-byte local SGE and share the outstanding-read context limit.
  kFetchAdd,
  kCompareSwap,
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocalProtectionError,   // bad lkey / SGE outside registered region
  kRemoteAccessError,      // bad rkey / bounds / missing remote permission
  kTransportError,         // injected transport failure
  kFlushError,             // QP moved to error state before execution
};

const char* to_string(WcStatus s);
const char* to_string(Opcode op);

/// Memory-region access rights (a registration must name every right it
/// grants; RDMA operations are validated against them).
enum Access : std::uint32_t {
  kLocalWrite = 1u << 0,
  kRemoteWrite = 1u << 1,
  kRemoteRead = 1u << 2,
  kRemoteAtomic = 1u << 3,
  kAllAccess = kLocalWrite | kRemoteWrite | kRemoteRead | kRemoteAtomic,
};

/// Scatter/gather element of a work request.
struct Sge {
  std::byte* addr = nullptr;
  std::size_t length = 0;
  std::uint32_t lkey = 0;
};

/// Send-queue work request (a "descriptor" in the paper's terminology).
struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  std::vector<Sge> sgl;
  /// RDMA only: remote virtual address and the rkey obtained at
  /// registration time on the remote side.
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;
  /// Unsignaled requests produce no CQE on success (errors always do).
  bool signaled = true;
  /// kFetchAdd: the addend.  kCompareSwap: the expected value.
  std::uint64_t atomic_arg = 0;
  /// kCompareSwap: the value stored if the comparison succeeds.
  std::uint64_t atomic_swap = 0;

  std::size_t total_length() const {
    std::size_t n = 0;
    for (const auto& s : sgl) n += s.length;
    return n;
  }
};

/// Receive-queue work request.
struct RecvWr {
  std::uint64_t wr_id = 0;
  std::vector<Sge> sgl;

  std::size_t total_length() const {
    std::size_t n = 0;
    for (const auto& s : sgl) n += s.length;
    return n;
  }
};

/// Completion-queue entry.
struct Wc {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  Opcode opcode = Opcode::kSend;
  std::size_t byte_len = 0;
  std::uint32_t qp_num = 0;
  bool is_recv = false;
};

/// Thrown for API misuse (posting to an unconnected QP, bad arguments).
/// Runtime data-path failures are reported through Wc::status instead.
class VerbsError : public std::logic_error {
  using std::logic_error::logic_error;
};

/// Thrown when register_memory cannot pin more memory (the per-PD
/// FabricConfig::max_registered_bytes limit).  A runtime condition, not a
/// programming error: callers such as the registration cache respond by
/// evicting and retrying.
class RegistrationError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace ib
