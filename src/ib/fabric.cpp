#include "ib/fabric.hpp"

#include "ib/hca.hpp"

namespace ib {

Fabric::Fabric(sim::Simulator& sim, FabricConfig cfg)
    : sim_(&sim), cfg_(cfg), rng_(cfg.inject_seed) {}

Fabric::~Fabric() = default;

Node& Fabric::add_node(std::string name) {
  const int id = static_cast<int>(nodes_.size());
  if (name.empty()) name = "node" + std::to_string(id);
  nodes_.push_back(std::make_unique<Node>(*this, id, std::move(name)));
  return *nodes_.back();
}

sim::Task<sim::Tick> Fabric::book_path(Port& src, Port& dst, std::int64_t n,
                                       sim::FaultSchedule::DegradeSpec deg) {
  // Even a zero-byte operation moves a transport header.
  if (n <= 0) n = 16;
  sim::Simulator& s = *sim_;
  Node& src_node = src.hca().node();
  Node& dst_node = dst.hca().node();
  const std::int64_t chunk_max = cfg_.dma_chunk_bytes;
  // Bound how far the engine may book the TX link ahead of real time: deep
  // enough that consecutive chunks/WQEs keep the wire saturated, shallow
  // enough that later small descriptors (pointer updates) are not starved.
  const sim::Tick backlog_bound =
      4 * sim::transfer_time(chunk_max, src.mbps());

  // Gray-failure shaping: a degraded link serializes chunks slower
  // (service-time multiplier on the TX stage) and adds/stretches wire
  // latency.  tmult == 1.0 and the untouched `wire` below are the exact
  // fault-free arithmetic, so armed-but-clean traces stay bit-identical.
  double tmult = 1.0;
  sim::Tick wire = cfg_.wire_latency;
  if (deg.active()) {
    if (deg.bandwidth_mult > 0.0) tmult = 1.0 / deg.bandwidth_mult;
    wire = deg.latency_add +
           static_cast<sim::Tick>(deg.latency_mult *
                                  static_cast<double>(cfg_.wire_latency));
  }

  bool first = true;
  sim::Tick delivered = s.now();
  std::int64_t remaining = n;
  while (remaining > 0) {
    const std::int64_t chunk = remaining < chunk_max ? remaining : chunk_max;
    remaining -= chunk;
    // Source DMA read; the engine paces itself on this stage so that CPU
    // copies contend with DMA at chunk granularity.  The bus is shared by
    // every rail of the node -- the aggregate cap multirail cannot exceed.
    const sim::Tick s_done = src_node.bus().reserve(chunk);
    co_await s.delay_until(s_done);
    // Wire serialization (FIFO across all QPs bound to this port).
    const sim::Tick l_done =
        src.tx_link().reserve_from(s.now(), chunk, tmult);
    sim::Tick arrive = l_done + wire;
    if (first) {
      arrive += cfg_.rx_overhead;
      first = false;
    }
    // Destination-side stages are booked ahead of their start time; the
    // FIFO gap this can leave is bounded by one wire latency (DESIGN.md).
    const sim::Tick r_done = dst.rx_link().reserve_from(arrive, chunk);
    delivered = dst_node.bus().reserve_from(r_done, chunk);
    if (l_done > s.now() + backlog_bound) {
      co_await s.delay_until(l_done - backlog_bound);
    }
  }
  src.hca().bytes_tx += n;
  co_return delivered;
}

sim::Task<sim::Tick> Fabric::book_path(Node& src, Node& dst, std::int64_t n) {
  co_return co_await book_path(src.rail(0), dst.rail(0), n);
}

}  // namespace ib
