// Host channel adapter: the node's attachment point to the fabric.  Owns the
// TX/RX link bandwidth servers (PCI-X + 4X link, effective 870 MB/s each
// way), and the protection domains, completion queues, and queue pairs
// created on this adapter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "sim/resource.hpp"

namespace ib {

class Node;
class Fabric;
class QueuePair;

class Hca {
 public:
  explicit Hca(Node& node);
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;
  ~Hca();

  ProtectionDomain& alloc_pd();
  CompletionQueue& create_cq(std::string name);
  QueuePair& create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                       CompletionQueue& recv_cq);

  Node& node() const noexcept { return *node_; }
  Fabric& fabric() const noexcept;
  sim::BandwidthResource& tx_link() noexcept { return tx_link_; }
  sim::BandwidthResource& rx_link() noexcept { return rx_link_; }

  // Lifetime traffic counters (reported by benches).
  std::uint64_t writes_posted = 0;
  std::uint64_t reads_posted = 0;
  std::uint64_t sends_posted = 0;
  std::uint64_t atomics_posted = 0;
  std::int64_t bytes_tx = 0;

 private:
  Node* node_;
  sim::BandwidthResource tx_link_;
  sim::BandwidthResource rx_link_;
  std::vector<std::unique_ptr<ProtectionDomain>> pds_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

}  // namespace ib
