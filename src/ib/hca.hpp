// Host channel adapter: the node's attachment point to the fabric.  An HCA
// owns one or more ports; each (hca, port) pair is one *rail* of the node,
// with its own TX/RX link bandwidth servers (PCI-X + 4X link, effective
// 870 MB/s each way by default) and its own failure domain.  The HCA also
// owns the protection domains, completion queues, and queue pairs created
// on this adapter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ib/cq.hpp"
#include "ib/mr.hpp"
#include "sim/resource.hpp"

namespace ib {

class Node;
class Fabric;
class QueuePair;
class Hca;

/// One physical port: the unit of link bandwidth and of failure.  A rail
/// that dies (sim::FaultSchedule "<node>.rail<r>" scope) flips `up_` off,
/// sticky: every WQE initiated through it thereafter exhausts its RC
/// retries and errors out, and the channel layer drops the rail from its
/// stripe set.
class Port {
 public:
  Port(Hca& hca, int index, int rail, double mbps);
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  Hca& hca() const noexcept { return *hca_; }
  /// Port index within the owning HCA.
  int index() const noexcept { return index_; }
  /// Flat rail index on the node (hca * ports_per_hca + port).
  int rail() const noexcept { return rail_; }
  double mbps() const noexcept { return mbps_; }
  sim::BandwidthResource& tx_link() noexcept { return tx_link_; }
  sim::BandwidthResource& rx_link() noexcept { return rx_link_; }

  bool up() const noexcept { return up_; }
  void fail() noexcept { up_ = false; }

 private:
  Hca* hca_;
  int index_;
  int rail_;
  double mbps_;
  bool up_ = true;
  sim::BandwidthResource tx_link_;
  sim::BandwidthResource rx_link_;
};

class Hca {
 public:
  Hca(Node& node, int index = 0);
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;
  ~Hca();

  ProtectionDomain& alloc_pd();
  CompletionQueue& create_cq(std::string name);
  /// Creates a QP bound to `port` (default: this HCA's port 0).  The PD may
  /// belong to any HCA of the same node -- a modelling simplification (real
  /// multi-HCA stacks register per HCA; our per-node registration keeps one
  /// rkey valid across rails) documented in DESIGN.md.
  QueuePair& create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                       CompletionQueue& recv_cq);
  QueuePair& create_qp(ProtectionDomain& pd, CompletionQueue& send_cq,
                       CompletionQueue& recv_cq, Port& port);

  Node& node() const noexcept { return *node_; }
  Fabric& fabric() const noexcept;
  int index() const noexcept { return index_; }
  int port_count() const noexcept { return static_cast<int>(ports_.size()); }
  Port& port(int i) const { return *ports_.at(static_cast<std::size_t>(i)); }
  /// Port 0's links (the legacy single-rail accessors).
  sim::BandwidthResource& tx_link() noexcept { return ports_[0]->tx_link(); }
  sim::BandwidthResource& rx_link() noexcept { return ports_[0]->rx_link(); }

  // Lifetime traffic counters (reported by benches).
  std::uint64_t writes_posted = 0;
  std::uint64_t reads_posted = 0;
  std::uint64_t sends_posted = 0;
  std::uint64_t atomics_posted = 0;
  std::int64_t bytes_tx = 0;

 private:
  Node* node_;
  int index_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<ProtectionDomain>> pds_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

}  // namespace ib
